//! Fine-grained clustering of weight channels (Algorithm 1, steps 3–14).
//!
//! A [`Cluster`] holds three consecutive weights of one channel. The
//! outlier rule compares the largest and smallest *absolute* values inside
//! the cluster: if `max > threshold * min` (threshold 4 in the paper) the
//! cluster is treated as containing outliers and the smallest value is
//! sacrificed so the two informative values can use 3 bits.

use crate::encoding::ClusterCode;
use fineq_quant::SymmetricGrid;

/// Three consecutive weights of one channel.
///
/// Channels whose length is not a multiple of three are padded with zeros;
/// the padding is tracked by the channel container ([`split_channel`]
/// returns the logical length separately) and stripped on decode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cluster {
    values: [f32; 3],
}

impl Cluster {
    /// Wraps three weights.
    pub fn new(values: [f32; 3]) -> Self {
        Self { values }
    }

    /// The raw values.
    pub fn values(&self) -> [f32; 3] {
        self.values
    }

    /// Largest absolute value.
    pub fn abs_max(&self) -> f32 {
        self.values.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Smallest absolute value.
    pub fn abs_min(&self) -> f32 {
        self.values.iter().fold(f32::INFINITY, |m, v| m.min(v.abs()))
    }

    /// The paper's outlier test: `max(|w|) > threshold * min(|w|)`.
    ///
    /// An all-zero cluster is never an outlier cluster. A cluster with a
    /// zero minimum and a non-zero maximum always is (the ratio is
    /// unbounded), which matches the intent: the zero value carries no
    /// information and can be sacrificed for free.
    pub fn is_outlier(&self, threshold: f32) -> bool {
        self.abs_max() > threshold * self.abs_min()
    }

    /// Position (0..3) of the smallest absolute value — the value the
    /// outlier-protection mechanism sacrifices. Ties resolve to the first
    /// (lowest index), making quantization deterministic.
    pub fn weakest_position(&self) -> usize {
        let mut pos = 0;
        let mut best = self.values[0].abs();
        for (i, v) in self.values.iter().enumerate().skip(1) {
            if v.abs() < best {
                best = v.abs();
                pos = i;
            }
        }
        pos
    }

    /// The preliminary (pre-harmonization) code for this cluster.
    pub fn preliminary_code(&self, threshold: f32) -> ClusterCode {
        if self.is_outlier(threshold) {
            ClusterCode::zeroing(self.weakest_position())
        } else {
            ClusterCode::AllTwoBit
        }
    }

    /// Quantizes the cluster under `code` using the channel grids, returning
    /// the three signed integer codes (the zeroed position yields 0).
    pub fn quantize(&self, code: ClusterCode, g2: &SymmetricGrid, g3: &SymmetricGrid) -> [i32; 3] {
        let mut out = [0i32; 3];
        for (pos, &v) in self.values.iter().enumerate() {
            out[pos] = match code.bit_width_at(pos) {
                0 => 0,
                2 => g2.quantize(v),
                3 => g3.quantize(v),
                other => unreachable!("cluster fields are 0/2/3 bits, got {other}"),
            };
        }
        out
    }

    /// Reconstructs real values from integer codes under `code`.
    pub fn dequantize(
        q: [i32; 3],
        code: ClusterCode,
        g2: &SymmetricGrid,
        g3: &SymmetricGrid,
    ) -> [f32; 3] {
        let mut out = [0.0f32; 3];
        for (pos, item) in out.iter_mut().enumerate() {
            *item = match code.bit_width_at(pos) {
                0 => 0.0,
                2 => g2.dequantize(q[pos]),
                3 => g3.dequantize(q[pos]),
                other => unreachable!("cluster fields are 0/2/3 bits, got {other}"),
            };
        }
        out
    }

    /// Sum of squared reconstruction errors if this cluster is quantized
    /// under `code` — the objective the pair fine-tuning minimizes.
    pub fn reconstruction_error(
        &self,
        code: ClusterCode,
        g2: &SymmetricGrid,
        g3: &SymmetricGrid,
    ) -> f64 {
        let q = self.quantize(code, g2, g3);
        let dq = Self::dequantize(q, code, g2, g3);
        self.values
            .iter()
            .zip(dq.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum()
    }
}

/// Splits a channel into zero-padded clusters of three, returning the
/// clusters and the logical (unpadded) length.
pub fn split_channel(channel: &[f32]) -> (Vec<Cluster>, usize) {
    let len = channel.len();
    let n_clusters = len.div_ceil(3);
    let mut clusters = Vec::with_capacity(n_clusters);
    for i in 0..n_clusters {
        let mut vals = [0.0f32; 3];
        for (j, item) in vals.iter_mut().enumerate() {
            let idx = i * 3 + j;
            if idx < len {
                *item = channel[idx];
            }
        }
        clusters.push(Cluster::new(vals));
    }
    (clusters, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grids(absmax: f32) -> (SymmetricGrid, SymmetricGrid) {
        (SymmetricGrid::from_abs_max(absmax, 2), SymmetricGrid::from_abs_max(absmax, 3))
    }

    #[test]
    fn outlier_rule_matches_paper_examples() {
        // Fig. 4 row 2 cluster 1: (0.27, 0.03, 0.11): 0.27 > 4*0.03.
        assert!(Cluster::new([0.27, 0.03, 0.11]).is_outlier(4.0));
        // Fig. 4 row 1 cluster 1: (0.10, 0.12, 0.11): 0.12 < 4*0.10.
        assert!(!Cluster::new([0.10, 0.12, 0.11]).is_outlier(4.0));
    }

    #[test]
    fn all_zero_cluster_is_normal() {
        assert!(!Cluster::new([0.0, 0.0, 0.0]).is_outlier(4.0));
    }

    #[test]
    fn zero_min_with_nonzero_max_is_outlier() {
        assert!(Cluster::new([0.0, 0.5, 0.3]).is_outlier(4.0));
    }

    #[test]
    fn negative_values_use_absolute_magnitudes() {
        // |-0.4| vs |0.05|: outlier regardless of sign.
        assert!(Cluster::new([-0.4, 0.05, -0.2]).is_outlier(4.0));
        assert!(!Cluster::new([-0.4, -0.3, 0.35]).is_outlier(4.0));
    }

    #[test]
    fn weakest_position_finds_smallest_abs() {
        assert_eq!(Cluster::new([0.27, 0.03, 0.11]).weakest_position(), 1);
        assert_eq!(Cluster::new([0.19, 0.01, 0.16]).weakest_position(), 1);
        assert_eq!(Cluster::new([0.17, 0.12, 0.01]).weakest_position(), 2);
        // Ties resolve to the first occurrence.
        assert_eq!(Cluster::new([0.1, 0.1, 0.1]).weakest_position(), 0);
    }

    #[test]
    fn preliminary_code_selects_layout() {
        assert_eq!(Cluster::new([0.10, 0.12, 0.11]).preliminary_code(4.0), ClusterCode::AllTwoBit);
        assert_eq!(Cluster::new([0.27, 0.03, 0.11]).preliminary_code(4.0), ClusterCode::ZeroSecond);
    }

    #[test]
    fn quantize_matches_fig4_row2() {
        // Channel absmax = 0.27, s3 = 0.09: (0.27,0.03,0.11) -> (3,0,1).
        let (g2, g3) = grids(0.27);
        let q = Cluster::new([0.27, 0.03, 0.11]).quantize(ClusterCode::ZeroSecond, &g2, &g3);
        assert_eq!(q, [3, 0, 1]);
        let q = Cluster::new([0.19, 0.01, 0.16]).quantize(ClusterCode::ZeroSecond, &g2, &g3);
        assert_eq!(q, [2, 0, 2]);
    }

    #[test]
    fn quantize_matches_fig4_row1() {
        // Channel absmax = 0.13, s2 = 0.13: all-normal row.
        let (g2, g3) = grids(0.13);
        let q = Cluster::new([0.10, 0.12, 0.11]).quantize(ClusterCode::AllTwoBit, &g2, &g3);
        assert_eq!(q, [1, 1, 1]);
        let q = Cluster::new([0.12, 0.13, 0.04]).quantize(ClusterCode::AllTwoBit, &g2, &g3);
        assert_eq!(q, [1, 1, 0]);
    }

    #[test]
    fn dequantize_inverts_quantize_on_grid_points() {
        let (g2, g3) = grids(0.3);
        let c = Cluster::new([0.3, -0.1, 0.2]);
        for code in ClusterCode::ALL {
            let q = c.quantize(code, &g2, &g3);
            let dq = Cluster::dequantize(q, code, &g2, &g3);
            let q2 = Cluster::new(dq).quantize(code, &g2, &g3);
            assert_eq!(q, q2, "{code}");
        }
    }

    #[test]
    fn reconstruction_error_prefers_protecting_outliers() {
        // A strong outlier cluster: 3-bit protection must beat 2-bit.
        let (g2, g3) = grids(0.8);
        let c = Cluster::new([0.8, 0.01, 0.3]);
        let err_protect = c.reconstruction_error(ClusterCode::ZeroSecond, &g2, &g3);
        let err_flat = c.reconstruction_error(ClusterCode::AllTwoBit, &g2, &g3);
        assert!(err_protect < err_flat);
    }

    #[test]
    fn split_channel_pads_tail_with_zeros() {
        let (clusters, len) = split_channel(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(len, 4);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].values(), [1.0, 2.0, 3.0]);
        assert_eq!(clusters[1].values(), [4.0, 0.0, 0.0]);
    }

    #[test]
    fn split_channel_exact_multiple_has_no_padding() {
        let (clusters, len) = split_channel(&[1.0; 6]);
        assert_eq!((clusters.len(), len), (2, 6));
    }

    #[test]
    fn split_empty_channel() {
        let (clusters, len) = split_channel(&[]);
        assert!(clusters.is_empty());
        assert_eq!(len, 0);
    }
}
