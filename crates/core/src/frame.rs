//! Length-prefixed, checksummed message frames over byte streams.
//!
//! The shard wire format of [`crate::serialize`] says what a worker's
//! weight slice *is*; this module says how bytes move between a serving
//! coordinator and its workers. A **frame** is the unit of exchange on a
//! connection — one request or one response — and carries its own
//! integrity check so a flipped bit anywhere (header or payload) is a
//! typed error, never a silently wrong answer:
//!
//! ```text
//! magic    : 4 bytes  "FNQF"
//! kind     : u8       message kind (opaque to this module)
//! length   : u32 LE   payload bytes that follow the header
//! checksum : u32 LE   FNV-1a over kind, length and the payload
//! payload  : `length` bytes
//! ```
//!
//! The checksum covers the kind and length fields as well as the payload,
//! so corrupt routing metadata is caught exactly like corrupt payload
//! bytes — the same policy as the shard envelope. The length field is
//! capped at [`MAX_FRAME_PAYLOAD`] before any allocation, so a corrupt
//! length can never balloon memory or stall a reader waiting for bytes
//! that will never come.
//!
//! [`read_frame`] / [`write_frame`] run over any [`Read`] / [`Write`],
//! looping internally on short reads and short writes — a throttling
//! socket that delivers one byte per call produces the identical result
//! (asserted by tests). [`read_frame_deadline`] / [`write_frame_deadline`]
//! add an **absolute** per-frame deadline on top: the budget shrinks
//! across those internal retries, so even a slow-drip peer cannot
//! stretch one frame past the bound. [`Stream`] and [`Listener`] are
//! the std-only socket layer beneath them: one address syntax
//! (`tcp:host:port`, `unix:/path`) covering both `std::net` TCP and
//! Unix domain sockets.
//!
//! The frame layer itself carries no version or correlation fields —
//! `kind` and the payload are opaque here. Payload-level protocols
//! version themselves on top: the serving transport stamps its payloads
//! (see `PROTOCOL_VERSION` in `fineq-lm`'s `remote` module, whose v2
//! `GATHER`/`PARTIAL` payloads lead with a `u64` request nonce so
//! replies are self-identifying and may be pipelined per connection).

use crate::serialize::fnv1a32_chain;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: &[u8; 4] = b"FNQF";

/// Fixed byte length of the frame header preceding the payload.
pub const FRAME_HEADER_BYTES: usize = 13;

/// Upper bound on a frame's payload length (1 GiB). A header declaring
/// more is rejected with [`FrameError::TooLarge`] before any allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// Errors from [`read_frame`] / [`write_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly on a frame boundary — no bytes
    /// of a new frame had arrived. Normal end of a connection.
    Closed,
    /// The stream ended mid-frame: a header or declared payload was cut
    /// short.
    Truncated,
    /// The frame did not open with [`FRAME_MAGIC`].
    BadMagic,
    /// The header declared a payload longer than [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// Kind, length or payload bytes do not match the header checksum.
    BadChecksum,
    /// A deadline expired before the frame completed: either a
    /// per-syscall socket timeout armed via [`Stream::set_read_timeout`]
    /// / [`Stream::set_write_timeout`], or the absolute end-to-end bound
    /// of [`read_frame_deadline`] / [`write_frame_deadline`]. A hung
    /// peer surfaces here instead of blocking forever.
    TimedOut,
    /// The underlying stream failed.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic => write!(f, "missing FNQF frame magic"),
            FrameError::TooLarge(len) => {
                write!(f, "frame payload length {len} exceeds the {MAX_FRAME_PAYLOAD} cap")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::TimedOut => write!(f, "frame deadline expired"),
            FrameError::Io(e) => write!(f, "stream I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        // Socket deadlines surface as `WouldBlock` (Unix `SO_RCVTIMEO`)
        // or `TimedOut` depending on platform; both mean the armed
        // deadline expired, which callers must be able to match on.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut,
            _ => FrameError::Io(e),
        }
    }
}

/// FNV-1a over the kind byte, the LE length field and the payload — the
/// integrity check every frame carries.
fn frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    let h = fnv1a32_chain(0x811c_9dc5, &[kind]);
    let h = fnv1a32_chain(h, &(payload.len() as u32).to_le_bytes());
    fnv1a32_chain(h, payload)
}

/// Serializes one frame to bytes (header followed by payload).
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — a caller bug, not
/// a wire condition.
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD} cap",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame and flushes the stream. Short writes are retried
/// internally (`write_all`), so a throttling sink receives the identical
/// byte sequence.
///
/// # Errors
///
/// Returns [`FrameError::TooLarge`] — before emitting a single byte —
/// for a payload over [`MAX_FRAME_PAYLOAD`], which no peer would accept;
/// [`FrameError::TimedOut`] when an armed write deadline expires; and
/// [`FrameError::Io`] when the stream fails.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(FrameError::TooLarge(u32::try_from(payload.len()).unwrap_or(u32::MAX)));
    }
    w.write_all(&frame_bytes(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Fills `buf` completely, looping on short reads. `at_boundary`
/// distinguishes a clean close (EOF before the first byte of a frame)
/// from a mid-frame truncation.
fn fill(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && at_boundary {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame, returning its kind and payload.
///
/// Validates in order: magic, length cap (**before** allocating), then
/// the checksum over kind + length + payload. Short reads are retried
/// internally, so a throttling source that delivers one byte per call
/// decodes identically.
///
/// # Errors
///
/// Every failure is a typed [`FrameError`]; corrupt input can never
/// decode as a different valid frame (the checksum covers every
/// non-magic byte) and never stalls on a declared length the peer will
/// not send beyond the cap.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    fill(r, &mut header, true)?;
    if &header[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
    let checksum = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    fill(r, &mut payload, false)?;
    if frame_checksum(kind, &payload) != checksum {
        return Err(FrameError::BadChecksum);
    }
    Ok((kind, payload))
}

/// Draws every read of one frame from a single absolute deadline: the
/// remaining budget is re-armed as the socket timeout before each
/// syscall, so a peer trickling one byte per interval spends the budget
/// down instead of resetting it (per-syscall `SO_RCVTIMEO` alone would
/// restart on every byte).
struct DeadlineRead<'a> {
    stream: &'a mut Stream,
    deadline: Instant,
}

impl Read for DeadlineRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(io::ErrorKind::TimedOut.into());
        }
        self.stream.set_read_timeout(Some(left))?;
        self.stream.read(buf)
    }
}

/// The write-side mirror of [`DeadlineRead`].
struct DeadlineWrite<'a> {
    stream: &'a mut Stream,
    deadline: Instant,
}

impl Write for DeadlineWrite<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let left = self.deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(io::ErrorKind::TimedOut.into());
        }
        self.stream.set_write_timeout(Some(left))?;
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// [`read_frame`] under an absolute end-to-end deadline: the whole frame
/// must arrive within `timeout`, measured from this call, no matter how
/// the bytes are paced. Unlike a socket timeout armed once with
/// [`Stream::set_read_timeout`] — which bounds each *syscall* and so
/// resets whenever a slow-drip peer delivers a single byte — the budget
/// here only shrinks. A zero `timeout` disarms the socket deadline and
/// blocks forever. The socket's read timeout is left at whatever the
/// last re-arm set; callers using deadline-aware I/O throughout never
/// observe it.
///
/// # Errors
///
/// As [`read_frame`], with [`FrameError::TimedOut`] when the budget runs
/// out mid-frame.
pub fn read_frame_deadline(
    stream: &mut Stream,
    timeout: Duration,
) -> Result<(u8, Vec<u8>), FrameError> {
    if timeout.is_zero() {
        stream.set_read_timeout(None).map_err(FrameError::Io)?;
        return read_frame(stream);
    }
    let deadline = Instant::now() + timeout;
    read_frame(&mut DeadlineRead { stream, deadline })
}

/// [`write_frame`] under an absolute end-to-end deadline, the mirror of
/// [`read_frame_deadline`]: a peer that drains its socket one byte per
/// interval cannot stretch the write past `timeout`. A zero `timeout`
/// disarms the socket deadline and blocks forever.
///
/// # Errors
///
/// As [`write_frame`], with [`FrameError::TimedOut`] when the budget
/// runs out mid-frame.
pub fn write_frame_deadline(
    stream: &mut Stream,
    kind: u8,
    payload: &[u8],
    timeout: Duration,
) -> Result<(), FrameError> {
    if timeout.is_zero() {
        stream.set_write_timeout(None).map_err(FrameError::Io)?;
        return write_frame(stream, kind, payload);
    }
    let deadline = Instant::now() + timeout;
    write_frame(&mut DeadlineWrite { stream, deadline }, kind, payload)
}

/// A connected byte stream under one address syntax: `tcp:host:port`
/// (with `TCP_NODELAY`, since frames are request/response sized) or
/// `unix:/path` to a Unix domain socket.
#[derive(Debug)]
pub enum Stream {
    /// A `std::net` TCP connection.
    Tcp(TcpStream),
    /// A Unix domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

fn bad_addr(addr: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("address {addr:?} must be tcp:host:port or unix:/path"),
    )
}

impl Stream {
    /// Connects to `addr` (`tcp:host:port` or `unix:/path`).
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error, or `InvalidInput` for an
    /// unrecognized address scheme (including `unix:` on non-Unix hosts).
    pub fn connect(addr: &str) -> io::Result<Self> {
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            let s = TcpStream::connect(hostport)?;
            s.set_nodelay(true)?;
            return Ok(Stream::Tcp(s));
        }
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            return UnixStream::connect(path).map(Stream::Unix);
            #[cfg(not(unix))]
            let _ = path;
        }
        Err(bad_addr(addr))
    }

    /// Connects to `addr` like [`Stream::connect`], but gives up after
    /// `timeout` instead of waiting on the platform's (much longer)
    /// connect timeout. Every resolved socket address is attempted in
    /// resolution order with `timeout` each — the same coverage as the
    /// plain connect path, which also walks the full list — so a
    /// dual-stack hostname reachable only on its second address still
    /// connects. For `unix:` paths connect is local and effectively
    /// instant, so the plain connect is used.
    ///
    /// # Errors
    ///
    /// As [`Stream::connect`], plus `TimedOut` when every attempt's
    /// deadline expires and `InvalidInput` when the host resolves to no
    /// address. The error reported is the last attempt's.
    pub fn connect_timeout(addr: &str, timeout: std::time::Duration) -> io::Result<Self> {
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            use std::net::ToSocketAddrs;
            let mut last_err = None;
            for sock in hostport.to_socket_addrs()? {
                match TcpStream::connect_timeout(&sock, timeout) {
                    Ok(s) => {
                        s.set_nodelay(true)?;
                        return Ok(Stream::Tcp(s));
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            return Err(last_err
                .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address")));
        }
        Self::connect(addr)
    }

    /// Arms a timeout on every subsequent read syscall: a read that makes
    /// no progress for `timeout` returns and [`read_frame`] surfaces it
    /// as [`FrameError::TimedOut`]. `None` disarms. A zero duration is
    /// rejected by std — pass `None` to block forever.
    ///
    /// This is a **per-syscall** bound (`SO_RCVTIMEO`): every byte that
    /// arrives restarts the clock, so a slow-drip peer can stretch one
    /// frame to `timeout × bytes` in the worst case. For an absolute
    /// end-to-end bound on a whole frame use [`read_frame_deadline`],
    /// which shrinks the armed timeout as the budget drains.
    ///
    /// # Errors
    ///
    /// Returns the underlying `set_read_timeout` error.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Arms a timeout on every subsequent write syscall, the mirror of
    /// [`Stream::set_read_timeout`] (and per-syscall in the same way —
    /// see [`write_frame_deadline`] for the absolute bound): a peer that
    /// stops draining its socket surfaces as [`FrameError::TimedOut`]
    /// instead of blocking [`write_frame`] forever.
    ///
    /// # Errors
    ///
    /// Returns the underlying `set_write_timeout` error.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Clones the handle: both values refer to the same connection (the
    /// fault-injection proxy uses one per relay direction).
    ///
    /// # Errors
    ///
    /// Returns the underlying `try_clone` error.
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Shuts down both directions of the connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying shutdown error.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener under the same address syntax as [`Stream`].
#[derive(Debug)]
pub enum Listener {
    /// A `std::net` TCP listener.
    Tcp(TcpListener),
    /// A Unix domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr` (`tcp:host:port` — port 0 picks a free port — or
    /// `unix:/path`; a stale socket file at the path is removed first).
    ///
    /// # Errors
    ///
    /// Returns the underlying bind error, or `InvalidInput` for an
    /// unrecognized address scheme.
    pub fn bind(addr: &str) -> io::Result<Self> {
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            return TcpListener::bind(hostport).map(Listener::Tcp);
        }
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                // A previous worker killed hard leaves its socket file
                // behind; binding over it is the restart path.
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path).map(Listener::Unix);
            }
            #[cfg(not(unix))]
            let _ = path;
        }
        Err(bad_addr(addr))
    }

    /// The bound address in connectable `tcp:`/`unix:` syntax — for TCP
    /// port 0 this is where the assigned port surfaces.
    ///
    /// # Errors
    ///
    /// Returns the underlying `local_addr` error, or `InvalidInput` for
    /// an unnamed Unix socket.
    pub fn local_addr(&self) -> io::Result<String> {
        match self {
            Listener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unnamed socket"))?;
                Ok(format!("unix:{}", path.display()))
            }
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying accept error.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_frame() -> (u8, Vec<u8>, Vec<u8>) {
        let payload: Vec<u8> = (0u8..37).collect();
        let bytes = frame_bytes(9, &payload);
        (9, payload, bytes)
    }

    #[test]
    fn round_trip_preserves_kind_and_payload() {
        for payload in [vec![], vec![0xAB], (0u8..=255).collect::<Vec<u8>>()] {
            for kind in [0u8, 1, 0x7F, 0xFF] {
                let mut buf = Vec::new();
                write_frame(&mut buf, kind, &payload).expect("vec write");
                let (k, p) = read_frame(&mut Cursor::new(&buf)).expect("round trip");
                assert_eq!((k, p), (kind, payload.clone()));
            }
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"first").expect("write");
        write_frame(&mut buf, 2, b"second").expect("write");
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).expect("frame 1"), (1, b"first".to_vec()));
        assert_eq!(read_frame(&mut cur).expect("frame 2"), (2, b"second".to_vec()));
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn clean_eof_on_a_boundary_is_closed_not_truncated() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));
    }

    /// The PR 5 envelope-fuzz pattern lifted to the frame layer: cutting
    /// the stream after every possible byte count must yield a typed
    /// error — `Closed` exactly on the boundary, `Truncated` mid-frame —
    /// never a hang, a panic, or a silently decoded frame.
    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let (_, _, bytes) = sample_frame();
        for cut in 0..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]))
                .expect_err("truncated frame must not decode");
            match err {
                FrameError::Closed => assert_eq!(cut, 0, "Closed only on the exact boundary"),
                FrameError::Truncated => assert!(cut > 0, "cut {cut}"),
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    /// Per-field mutation sweep (mirroring the shard-envelope fuzz):
    /// flipping any single byte of a frame — magic, kind, length,
    /// checksum or payload — must surface as a typed error appropriate to
    /// the field. No single-byte corruption may decode successfully.
    #[test]
    fn every_single_byte_mutation_is_rejected_never_silent() {
        let (_, _, bytes) = sample_frame();
        for idx in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = bytes.clone();
                bad[idx] ^= flip;
                // Append a second valid frame so a shrunken length field
                // finds trailing bytes available — the checksum must
                // still catch it rather than resynchronize silently.
                bad.extend_from_slice(&frame_bytes(3, b"tail"));
                let err = read_frame(&mut Cursor::new(&bad))
                    .expect_err("single-byte corruption must not decode");
                match (idx, err) {
                    (0..=3, FrameError::BadMagic) => {}
                    (0..=3, other) => panic!("magic byte {idx}: unexpected error {other:?}"),
                    (4, FrameError::BadChecksum) => {} // kind is checksummed
                    (4, other) => panic!("kind byte: unexpected error {other:?}"),
                    // Length bytes: a larger value truncates or trips the
                    // cap, a smaller value mis-frames and fails the
                    // checksum. All typed, none silent.
                    (
                        5..=8,
                        FrameError::Truncated | FrameError::TooLarge(_) | FrameError::BadChecksum,
                    ) => {}
                    (5..=8, other) => panic!("length byte {idx}: unexpected error {other:?}"),
                    (_, FrameError::BadChecksum) => {} // checksum or payload bytes
                    (_, other) => panic!("byte {idx}: unexpected error {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let (_, payload, bytes) = sample_frame();
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        // Fix up the checksum so only the cap (not the checksum) rejects:
        // the cap must fire first, before any buffer is sized.
        let h = fnv1a32_chain(0x811c_9dc5, &[bytes[4]]);
        let h = fnv1a32_chain(h, &(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        bad[9..13].copy_from_slice(&fnv1a32_chain(h, &payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad)),
            Err(FrameError::TooLarge(len)) if len == MAX_FRAME_PAYLOAD + 1
        ));
    }

    /// A reader that delivers at most one byte per call — the pathological
    /// partial-read socket.
    struct OneByteRead<R>(R);

    impl<R: Read> Read for OneByteRead<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    /// A writer that accepts at most one byte per call — the pathological
    /// short-write socket.
    struct OneByteWrite<W>(W);

    impl<W: Write> Write for OneByteWrite<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.write(&buf[..n])
        }
        fn flush(&mut self) -> io::Result<()> {
            self.0.flush()
        }
    }

    #[test]
    fn throttled_one_byte_reads_and_writes_round_trip_identically() {
        let payload: Vec<u8> = (0u8..=200).rev().collect();
        let mut sink = OneByteWrite(Vec::new());
        write_frame(&mut sink, 42, &payload).expect("short writes are retried");
        assert_eq!(sink.0, frame_bytes(42, &payload), "byte-identical wire image");
        let mut throttled = OneByteRead(Cursor::new(&sink.0));
        let (k, p) = read_frame(&mut throttled).expect("partial reads are retried");
        assert_eq!((k, p), (42, payload));
        // Truncation through the throttle is still the typed error.
        let cut = sink.0.len() - 1;
        let mut throttled = OneByteRead(Cursor::new(&sink.0[..cut]));
        assert!(matches!(read_frame(&mut throttled), Err(FrameError::Truncated)));
    }

    #[test]
    fn tcp_stream_round_trips_frames() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        assert!(addr.starts_with("tcp:"), "{addr}");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let (kind, payload) = read_frame(&mut conn).expect("server read");
            write_frame(&mut conn, kind + 1, &payload).expect("server write");
        });
        let mut client = Stream::connect(&addr).expect("connect");
        write_frame(&mut client, 7, b"over tcp").expect("client write");
        assert_eq!(read_frame(&mut client).expect("client read"), (8, b"over tcp".to_vec()));
        server.join().expect("server thread");
    }

    #[cfg(unix)]
    #[test]
    fn unix_stream_round_trips_frames_and_rebinds_over_stale_sockets() {
        let path =
            std::env::temp_dir().join(format!("fineq-frame-test-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        for _ in 0..2 {
            // Second iteration binds over the previous socket file.
            let listener = Listener::bind(&addr).expect("bind unix socket");
            assert_eq!(listener.local_addr().expect("bound address"), addr);
            let server = std::thread::spawn(move || {
                let mut conn = listener.accept().expect("accept");
                let (kind, payload) = read_frame(&mut conn).expect("server read");
                write_frame(&mut conn, kind, &payload).expect("server write");
            });
            let mut client = Stream::connect(&addr).expect("connect");
            write_frame(&mut client, 5, b"over unix").expect("client write");
            assert_eq!(read_frame(&mut client).expect("client read"), (5, b"over unix".to_vec()));
            server.join().expect("server thread");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_payload_is_rejected_on_the_write_side_before_any_bytes() {
        // Zero-filled and never touched: the cap check fires before the
        // frame is materialized, so this does not commit 1 GiB of pages.
        let payload = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, 1, &payload).expect_err("over-cap payload must not frame");
        assert!(matches!(err, FrameError::TooLarge(len) if len == MAX_FRAME_PAYLOAD + 1));
        assert!(sink.is_empty(), "no bytes may reach the wire");
    }

    #[test]
    fn read_deadline_surfaces_as_timed_out_and_disarms() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            // Answer only after the client has observed one timeout.
            let (kind, payload) = read_frame(&mut conn).expect("server read");
            write_frame(&mut conn, kind, &payload).expect("server write");
        });
        let mut client = Stream::connect(&addr).expect("connect");
        client.set_read_timeout(Some(std::time::Duration::from_millis(30))).expect("arm deadline");
        // Nothing sent yet: the read must come back TimedOut, not hang.
        assert!(matches!(read_frame(&mut client), Err(FrameError::TimedOut)));
        client.set_read_timeout(None).expect("disarm deadline");
        write_frame(&mut client, 3, b"late").expect("client write");
        assert_eq!(read_frame(&mut client).expect("client read"), (3, b"late".to_vec()));
        server.join().expect("server thread");
    }

    /// The review-driven slow-drip contract: a peer trickling one byte
    /// per interval restarts a per-syscall socket timeout on every byte,
    /// but must NOT be able to stretch [`read_frame_deadline`] past its
    /// absolute budget.
    #[test]
    fn read_frame_deadline_bounds_slow_drip_peers_end_to_end() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            // ~77 bytes at 20 ms/byte = ~1.5 s of dripping: each gap is
            // far under the 150 ms deadline, only the total exceeds it.
            let bytes = frame_bytes(4, &[7u8; 64]);
            for chunk in bytes.chunks(1) {
                if conn.write_all(chunk).is_err() || conn.flush().is_err() {
                    return; // client gave up, as expected
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut client = Stream::connect(&addr).expect("connect");
        let start = Instant::now();
        let err = read_frame_deadline(&mut client, Duration::from_millis(150))
            .expect_err("the drip must not beat the absolute deadline");
        assert!(matches!(err, FrameError::TimedOut), "{err:?}");
        // The full drip takes ~1.5 s; giving up well before that proves
        // the bound is absolute, not per-syscall.
        assert!(start.elapsed() < Duration::from_secs(1), "took {:?}", start.elapsed());
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn read_frame_deadline_accepts_frames_that_arrive_in_time() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            // Still dripping byte by byte, but fast enough to fit the
            // budget comfortably.
            for chunk in frame_bytes(6, b"on time").chunks(1) {
                conn.write_all(chunk).expect("drip");
                conn.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let mut client = Stream::connect(&addr).expect("connect");
        let got = read_frame_deadline(&mut client, Duration::from_secs(10)).expect("in-budget");
        assert_eq!(got, (6, b"on time".to_vec()));
        // Zero disarms: a plain exchange still works afterwards.
        server.join().expect("server thread");
    }

    #[test]
    fn write_frame_deadline_round_trips_and_zero_disarms() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            for _ in 0..2 {
                let (kind, payload) = read_frame(&mut conn).expect("server read");
                write_frame(&mut conn, kind, &payload).expect("server write");
            }
        });
        let mut client = Stream::connect(&addr).expect("connect");
        write_frame_deadline(&mut client, 9, b"bounded", Duration::from_secs(5)).expect("write");
        assert_eq!(read_frame(&mut client).expect("echo"), (9, b"bounded".to_vec()));
        // A zero deadline disarms any armed socket timeout and blocks
        // like the plain path.
        write_frame_deadline(&mut client, 9, b"unbounded", Duration::ZERO).expect("write");
        assert_eq!(
            read_frame_deadline(&mut client, Duration::ZERO).expect("echo"),
            (9, b"unbounded".to_vec())
        );
        server.join().expect("server thread");
    }

    /// `connect_timeout` must walk every resolved address like the plain
    /// connect does: `localhost` commonly resolves to `::1` first, and a
    /// listener bound to `127.0.0.1` is only reachable on the *second*
    /// address.
    #[test]
    fn connect_timeout_tries_every_resolved_address() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let port = addr.rsplit(':').next().expect("port");
        let conn =
            Stream::connect_timeout(&format!("tcp:localhost:{port}"), Duration::from_secs(5))
                .expect("must fall through to the reachable resolved address");
        drop(conn);
    }

    #[test]
    fn cloned_stream_handles_share_one_connection() {
        let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let (kind, payload) = read_frame(&mut conn).expect("server read");
            write_frame(&mut conn, kind, &payload).expect("server write");
        });
        let client = Stream::connect(&addr).expect("connect");
        let mut writer = client.try_clone().expect("clone handle");
        let mut reader = client;
        write_frame(&mut writer, 6, b"via clone").expect("write on clone");
        assert_eq!(read_frame(&mut reader).expect("read on original"), (6, b"via clone".to_vec()));
        server.join().expect("server thread");
    }

    #[test]
    fn unrecognized_address_schemes_are_invalid_input() {
        for addr in ["127.0.0.1:80", "udp:1.2.3.4:5", "unix"] {
            let e = Stream::connect(addr).expect_err("bad scheme must not connect");
            assert_eq!(e.kind(), io::ErrorKind::InvalidInput, "{addr}");
            let e = Listener::bind(addr).expect_err("bad scheme must not bind");
            assert_eq!(e.kind(), io::ErrorKind::InvalidInput, "{addr}");
        }
    }
}
