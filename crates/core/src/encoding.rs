//! Per-cluster encoding schemes.
//!
//! The paper's step 5 (Fig. 4) assigns a 2-bit code to each cluster:
//!
//! | code | layout | meaning |
//! |---|---|---|
//! | `00` | `(2b, 2b, 2b)` | normal cluster: all three values at 2 bits |
//! | `01` | `(0, 3b, 3b)`  | first value sacrificed, rest at 3 bits |
//! | `10` | `(3b, 0, 3b)`  | second value sacrificed |
//! | `11` | `(3b, 3b, 0)`  | third value sacrificed |

/// The four cluster layouts, with their exact 2-bit wire encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ClusterCode {
    /// `00`: all three values stored at 2 bits.
    AllTwoBit = 0b00,
    /// `01`: first value is zero, the other two stored at 3 bits.
    ZeroFirst = 0b01,
    /// `10`: second value is zero, the other two stored at 3 bits.
    ZeroSecond = 0b10,
    /// `11`: third value is zero, the other two stored at 3 bits.
    ZeroThird = 0b11,
}

impl ClusterCode {
    /// All four codes, in wire order.
    pub const ALL: [ClusterCode; 4] = [
        ClusterCode::AllTwoBit,
        ClusterCode::ZeroFirst,
        ClusterCode::ZeroSecond,
        ClusterCode::ZeroThird,
    ];

    /// The 2-bit wire value.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Parses a 2-bit wire value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> ClusterCode {
        match bits {
            0b00 => ClusterCode::AllTwoBit,
            0b01 => ClusterCode::ZeroFirst,
            0b10 => ClusterCode::ZeroSecond,
            0b11 => ClusterCode::ZeroThird,
            _ => panic!("cluster code must be 2 bits, got {bits}"),
        }
    }

    /// Whether this code applies the 3-bit outlier-protection layout.
    pub fn is_outlier(self) -> bool {
        !matches!(self, ClusterCode::AllTwoBit)
    }

    /// For outlier codes, the in-cluster position (0..3) whose value is
    /// sacrificed; `None` for the normal layout.
    pub fn zeroed_position(self) -> Option<usize> {
        match self {
            ClusterCode::AllTwoBit => None,
            ClusterCode::ZeroFirst => Some(0),
            ClusterCode::ZeroSecond => Some(1),
            ClusterCode::ZeroThird => Some(2),
        }
    }

    /// The outlier code that sacrifices the given position.
    ///
    /// # Panics
    ///
    /// Panics if `pos > 2`.
    pub fn zeroing(pos: usize) -> ClusterCode {
        match pos {
            0 => ClusterCode::ZeroFirst,
            1 => ClusterCode::ZeroSecond,
            2 => ClusterCode::ZeroThird,
            _ => panic!("cluster position must be 0..3, got {pos}"),
        }
    }

    /// Bit-width used for the value at `pos` under this code (0 means the
    /// value is not stored).
    pub fn bit_width_at(self, pos: usize) -> u8 {
        assert!(pos < 3, "cluster position must be 0..3");
        match self.zeroed_position() {
            None => 2,
            Some(z) if z == pos => 0,
            Some(_) => 3,
        }
    }

    /// Total data bits of a cluster under this code. Always 6 — the
    /// alignment property the paper's packing relies on.
    pub fn data_bits(self) -> u8 {
        (0..3).map(|p| self.bit_width_at(p)).sum()
    }
}

impl std::fmt::Display for ClusterCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ClusterCode::AllTwoBit => "(2b,2b,2b)",
            ClusterCode::ZeroFirst => "(0b,3b,3b)",
            ClusterCode::ZeroSecond => "(3b,0b,3b)",
            ClusterCode::ZeroThird => "(3b,3b,0b)",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values_match_paper_table() {
        assert_eq!(ClusterCode::AllTwoBit.bits(), 0b00);
        assert_eq!(ClusterCode::ZeroFirst.bits(), 0b01);
        assert_eq!(ClusterCode::ZeroSecond.bits(), 0b10);
        assert_eq!(ClusterCode::ZeroThird.bits(), 0b11);
    }

    #[test]
    fn from_bits_round_trips() {
        for code in ClusterCode::ALL {
            assert_eq!(ClusterCode::from_bits(code.bits()), code);
        }
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn from_bits_rejects_wide_values() {
        let _ = ClusterCode::from_bits(4);
    }

    #[test]
    fn every_code_costs_six_data_bits() {
        for code in ClusterCode::ALL {
            assert_eq!(code.data_bits(), 6, "{code}");
        }
    }

    #[test]
    fn zeroed_position_matches_layout() {
        assert_eq!(ClusterCode::AllTwoBit.zeroed_position(), None);
        assert_eq!(ClusterCode::ZeroFirst.zeroed_position(), Some(0));
        assert_eq!(ClusterCode::ZeroSecond.zeroed_position(), Some(1));
        assert_eq!(ClusterCode::ZeroThird.zeroed_position(), Some(2));
    }

    #[test]
    fn zeroing_is_inverse_of_zeroed_position() {
        for pos in 0..3 {
            assert_eq!(ClusterCode::zeroing(pos).zeroed_position(), Some(pos));
        }
    }

    #[test]
    fn bit_widths_per_position() {
        assert_eq!(ClusterCode::ZeroSecond.bit_width_at(0), 3);
        assert_eq!(ClusterCode::ZeroSecond.bit_width_at(1), 0);
        assert_eq!(ClusterCode::ZeroSecond.bit_width_at(2), 3);
        for p in 0..3 {
            assert_eq!(ClusterCode::AllTwoBit.bit_width_at(p), 2);
        }
    }

    #[test]
    fn outlier_flag() {
        assert!(!ClusterCode::AllTwoBit.is_outlier());
        assert!(ClusterCode::ZeroFirst.is_outlier());
    }

    #[test]
    fn display_shows_layout() {
        assert_eq!(ClusterCode::ZeroSecond.to_string(), "(3b,0b,3b)");
    }
}
