//! # fineq
//!
//! Reproduction of *"FineQ: Software-Hardware Co-Design for Low-Bit
//! Fine-Grained Mixed-Precision Quantization of LLMs"* (DATE 2025).
//!
//! This facade crate re-exports the workspace and provides the
//! [`pipeline`] glue that the experiments and examples build on: collect
//! calibration activations from a model, quantize every linear layer with
//! any [`WeightQuantizer`](fineq_quant::WeightQuantizer), and measure
//! perplexity before/after.
//!
//! ## Crate map
//!
//! * [`tensor`] — matrices, SPD solvers, deterministic RNG, statistics.
//! * [`lm`] — transformer substrate, synthetic corpora, perplexity.
//! * [`quant`] — quantization grids and the five baselines of Table I.
//! * [`core`] — the FineQ algorithm and its 2.33-bit packed format.
//! * [`accel`] — the temporal-coding accelerator model and its baseline.
//!
//! ## Quickstart
//!
//! ```
//! use fineq::core::FineQuantizer;
//! use fineq::quant::{Calibration, WeightQuantizer};
//! use fineq::tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(1);
//! let w = Matrix::from_fn(8, 48, |_, _| rng.laplace(0.0, 0.02));
//! let out = FineQuantizer::paper().quantize(&w, &Calibration::none());
//! println!("{} bits/weight", out.avg_bits);
//! # assert!(out.avg_bits < 3.5);
//! ```

pub use fineq_accel as accel;
pub use fineq_core as core;
pub use fineq_lm as lm;
pub use fineq_quant as quant;
pub use fineq_tensor as tensor;

pub mod pipeline;

pub use pipeline::{
    collect_calibration, observe, quantize_model, quantize_model_packed, serve_distributed,
    serve_packed, serve_packed_with_threads, serve_sharded, serve_sharded_with_threads,
    ModelCalibration, PipelineConfig, QuantizeReport,
};
