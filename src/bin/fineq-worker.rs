//! The `fineq-worker` process: one row-shard replica of a distributed
//! serving deployment.
//!
//! Binds the address given as the single argument (`tcp:host:port` —
//! port `0` picks a free one — or `unix:/path`), announces the bound
//! address on stdout, then serves coordinator connections: `LOAD` frames
//! ship FNQS weight-slice envelopes, `GATHER` frames request batched
//! partial matmuls, `PING` health-checks, `SHUTDOWN` exits. See
//! `fineq_lm::remote` for the protocol and the failover/replay contract.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(addr), None) = (args.next(), args.next()) else {
        eprintln!("usage: fineq-worker <tcp:host:port | unix:/path>");
        return ExitCode::from(2);
    };
    match fineq_lm::run_worker(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fineq-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
