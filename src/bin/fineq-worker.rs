//! The `fineq-worker` process: one row-shard replica of a distributed
//! serving deployment.
//!
//! Binds the address given as the first argument (`tcp:host:port` —
//! port `0` picks a free one — or `unix:/path`), announces the bound
//! address on stdout, then serves coordinator connections: `LOAD` frames
//! ship FNQS weight-slice envelopes, `GATHER` frames request batched
//! partial matmuls, `PING` health-checks, `SHUTDOWN` exits (removing a
//! Unix socket file on the way out). An optional second argument sets a
//! per-connection idle deadline in milliseconds — a coordinator that
//! hangs mid-frame longer than that gets its connection dropped instead
//! of wedging the worker forever (`0` disables the deadline, the
//! default). See `fineq_lm::remote` for the protocol and the
//! failover/replay contract.

use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let usage = || {
        eprintln!("usage: fineq-worker <tcp:host:port | unix:/path> [idle-timeout-ms]");
        ExitCode::from(2)
    };
    let Some(addr) = args.next() else {
        return usage();
    };
    let idle = match (args.next(), args.next()) {
        (None, _) => None,
        (Some(ms), None) => match ms.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => return usage(),
        },
        (Some(_), Some(_)) => return usage(),
    };
    match fineq_lm::run_worker_with(&addr, idle) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fineq-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
