//! The `fineq-worker` process: one row-shard replica of a distributed
//! serving deployment.
//!
//! Binds the address given as the first argument (`tcp:host:port` —
//! port `0` picks a free one — or `unix:/path`), announces the bound
//! address on stdout, then serves coordinator connections: `LOAD` frames
//! ship FNQS weight-slice envelopes, `GATHER` frames request batched
//! partial matmuls, `PING` health-checks, `STATS` snapshots the worker's
//! local metrics registry, `SHUTDOWN` exits (removing a Unix socket file
//! on the way out). An optional second argument sets a per-connection
//! idle deadline in milliseconds — a coordinator that hangs mid-frame
//! longer than that gets its connection dropped instead of wedging the
//! worker forever (`0` disables the deadline, the default).
//! `--metrics <host:port>` additionally serves the registry as
//! Prometheus-style text from that address, announced on stdout, for
//! direct operator scrapes. See `fineq_lm::remote` for the protocol and
//! the failover/replay contract.

use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let usage = || {
        eprintln!(
            "usage: fineq-worker <tcp:host:port | unix:/path> [idle-timeout-ms] \
             [--metrics <host:port>]"
        );
        ExitCode::from(2)
    };
    let mut addr = None;
    let mut idle = None;
    let mut metrics = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            match (metrics.is_none(), args.next()) {
                (true, Some(m)) => metrics = Some(m),
                _ => return usage(),
            }
        } else if addr.is_none() {
            addr = Some(arg);
        } else if idle.is_none() {
            match arg.parse::<u64>() {
                Ok(0) => idle = Some(None),
                Ok(ms) => idle = Some(Some(Duration::from_millis(ms))),
                Err(_) => return usage(),
            }
        } else {
            return usage();
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    match fineq_lm::run_worker_configured(&addr, idle.flatten(), metrics.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fineq-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
