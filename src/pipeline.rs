//! Whole-model quantization pipeline.
//!
//! Mirrors the paper's evaluation methodology: the quantization algorithm
//! runs **offline** on every linear layer of the transformer body;
//! activation-aware methods (GPTQ, OWQ) receive a small calibration set of
//! real layer inputs collected from a forward pass over corpus text.
//! Embeddings and the readout head stay in full precision, the standard
//! protocol of the GPTQ/OWQ line of work the paper compares against.

use fineq_core::{pool::default_threads, FineQuantizer, MetricsRegistry, ThreadPool};
use fineq_lm::{
    BatchScheduler, DistributedScheduler, LinearWeight, RemoteShardedModel, ShardedModel,
    ShardedScheduler, Transformer, TransportError, WeightSite,
};
use fineq_quant::{Calibration, QuantMetrics, QuantResult, WeightQuantizer};
use fineq_tensor::Matrix;
use std::sync::Arc;

/// Pipeline options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Calibration tokens to run through the model.
    pub calib_tokens: usize,
    /// Window length of the calibration forward passes.
    pub calib_window: usize,
    /// Also quantize the readout head (off by default; kept for ablation).
    pub quantize_head: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { calib_tokens: 1024, calib_window: 256, quantize_head: false }
    }
}

/// Calibration activations of one block. Q, K and V all read the same
/// post-RMSNorm hidden states, so one shared set covers the three of them —
/// there is no per-site copy.
#[derive(Debug, Clone)]
struct LayerCalibration {
    /// Input to `wq`/`wk`/`wv`.
    attn_input: Calibration,
    /// Input to `wo`.
    attn_ctx: Calibration,
    /// Input to `w1`.
    ffn_input: Calibration,
    /// Input to `w2`.
    ffn_mid: Calibration,
}

/// Calibration activations for every linear site in the model.
#[derive(Debug, Clone)]
pub struct ModelCalibration {
    layers: Vec<LayerCalibration>,
    /// Inputs to the readout head.
    head: Calibration,
}

impl ModelCalibration {
    /// The calibration set for `(layer, site)`. Q, K and V return the same
    /// shared attention-input set.
    pub fn site(&self, layer: usize, site: WeightSite) -> &Calibration {
        let layer = &self.layers[layer];
        match site {
            WeightSite::AttnQ | WeightSite::AttnK | WeightSite::AttnV => &layer.attn_input,
            WeightSite::AttnO => &layer.attn_ctx,
            WeightSite::FfnUp => &layer.ffn_input,
            WeightSite::FfnDown => &layer.ffn_mid,
        }
    }

    /// The calibration set for the readout head.
    pub fn head(&self) -> &Calibration {
        &self.head
    }
}

/// Stacks matrices vertically (rows concatenated).
fn vstack(parts: &[Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "nothing to stack");
    let cols = parts[0].cols();
    let rows: usize = parts.iter().map(|m| m.rows()).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in parts {
        assert_eq!(m.cols(), cols, "column mismatch in vstack");
        data.extend_from_slice(m.as_slice());
    }
    Matrix::from_vec(rows, cols, data)
}

/// Runs calibration text through the model and collects the inputs seen by
/// every linear layer.
///
/// # Panics
///
/// Panics if `tokens` is shorter than two positions.
pub fn collect_calibration(
    model: &Transformer,
    tokens: &[usize],
    window: usize,
) -> ModelCalibration {
    assert!(tokens.len() >= 2, "calibration stream too short");
    let n_layers = model.n_layers();
    // Four collection slots per layer: attention input (shared by Q/K/V),
    // attention context, FFN input, FFN mid.
    let mut per_layer: Vec<[Vec<Matrix>; 4]> = (0..n_layers).map(|_| Default::default()).collect();
    let mut head_parts: Vec<Matrix> = Vec::new();
    for chunk in tokens.chunks(window.max(2)) {
        if chunk.len() < 2 {
            continue;
        }
        let (_, trace) = model.forward_with_trace(chunk);
        for (l, lt) in trace.layers.into_iter().enumerate() {
            per_layer[l][0].push(lt.attn_input);
            per_layer[l][1].push(lt.attn_ctx);
            per_layer[l][2].push(lt.ffn_input);
            per_layer[l][3].push(lt.ffn_mid);
        }
        head_parts.push(trace.final_hidden);
    }
    let layers = per_layer
        .into_iter()
        .map(|parts| LayerCalibration {
            attn_input: Calibration::from_activations(vstack(&parts[0])),
            attn_ctx: Calibration::from_activations(vstack(&parts[1])),
            ffn_input: Calibration::from_activations(vstack(&parts[2])),
            ffn_mid: Calibration::from_activations(vstack(&parts[3])),
        })
        .collect();
    ModelCalibration { layers, head: Calibration::from_activations(vstack(&head_parts)) }
}

/// Per-site outcome of a whole-model quantization.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Block index.
    pub layer: usize,
    /// Which linear weight.
    pub site: WeightSite,
    /// Storage cost reported by the quantizer.
    pub avg_bits: f64,
    /// Reconstruction error metrics.
    pub metrics: QuantMetrics,
}

/// Outcome of a whole-model quantization.
#[derive(Debug, Clone)]
pub struct QuantizeReport {
    /// Per-site details.
    pub sites: Vec<SiteReport>,
    /// Parameter-weighted average storage bits across quantized sites.
    pub avg_bits: f64,
}

/// Shared scaffolding of the whole-model quantization entry points: walks
/// every block site of a dense source model, lets `quantize_site` produce
/// the replacement weight plus its accounting, optionally quantizes the
/// head densely, and assembles the [`QuantizeReport`].
fn quantize_model_with(
    model: &Transformer,
    config: &PipelineConfig,
    mut quantize_site: impl FnMut(usize, WeightSite, &Matrix) -> (f64, QuantMetrics, LinearWeight),
    quantize_head: impl FnOnce(&Matrix) -> QuantResult,
) -> (Transformer, QuantizeReport) {
    let mut out = model.clone();
    let mut sites = Vec::new();
    let mut bit_weighted = 0.0f64;
    let mut params = 0usize;
    for layer in 0..model.n_layers() {
        for site in WeightSite::ALL {
            let w = model
                .weight(layer, site)
                .as_dense()
                .expect("whole-model quantization expects a dense (fp32) source model");
            let (avg_bits, metrics, replacement) = quantize_site(layer, site, w);
            bit_weighted += avg_bits * w.len() as f64;
            params += w.len();
            sites.push(SiteReport { layer, site, avg_bits, metrics });
            *out.weight_mut(layer, site) = replacement;
        }
    }
    if config.quantize_head {
        let result = quantize_head(model.head());
        bit_weighted += result.avg_bits * model.head().len() as f64;
        params += model.head().len();
        *out.head_mut() = result.dequantized;
    }
    let avg_bits = if params > 0 { bit_weighted / params as f64 } else { 0.0 };
    (out, QuantizeReport { sites, avg_bits })
}

/// Quantizes every linear layer of `model` with `quantizer`, returning the
/// quantized model and a report.
///
/// `calibration` may be `None` for data-free methods; activation-aware
/// methods then fall back to identity Hessians.
pub fn quantize_model(
    model: &Transformer,
    quantizer: &dyn WeightQuantizer,
    calibration: Option<&ModelCalibration>,
    config: &PipelineConfig,
) -> (Transformer, QuantizeReport) {
    let none = Calibration::none();
    quantize_model_with(
        model,
        config,
        |layer, site, w| {
            let calib = calibration.map(|c| c.site(layer, site)).unwrap_or(&none);
            let result = quantizer.quantize(w, calib);
            let metrics = QuantMetrics::between(w, &result.dequantized);
            (result.avg_bits, metrics, result.dequantized.into())
        },
        |head| quantizer.quantize(head, calibration.map(|c| c.head()).unwrap_or(&none)),
    )
}

/// Quantizes every linear layer of `model` with FineQ and stores the
/// **packed** 2.33-bit blocks in the returned model — the serving path.
///
/// Unlike [`quantize_model`], which writes dequantized fp32 copies back,
/// the returned transformer holds the actual 7-bytes-per-24-weights
/// [`fineq_core::PackedMatrix`] at every block site and executes forward
/// passes through the fused block-streaming kernels. The readout head and
/// embeddings stay fp32 (the paper's protocol); `config.quantize_head`
/// quantize-dequantizes the head densely as before.
///
/// # Panics
///
/// Panics if the quantizer configuration is not packable (see
/// [`fineq_core::FineQConfig::is_packable`]) or the source model is not
/// dense.
pub fn quantize_model_packed(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
) -> (Transformer, QuantizeReport) {
    quantize_model_with(
        model,
        config,
        |_, _, w| {
            let packed = quantizer.quantize_packed(w);
            let avg_bits = packed.avg_bits_total();
            let metrics = QuantMetrics::between(w, &packed.dequantize());
            (avg_bits, metrics, LinearWeight::Packed(packed))
        },
        |head| quantizer.quantize(head, &Calibration::none()),
    )
}

/// Quantizes `model` to the packed serving format and wraps it in a
/// continuous-batching [`BatchScheduler`] with `max_batch` sequence slots —
/// the one-call serving entry point.
///
/// The returned scheduler owns the packed model: submit
/// [`fineq_lm::ServeRequest`]s and drive it with
/// [`BatchScheduler::step`] / [`BatchScheduler::run`]. Every step decodes
/// each layer's packed weight stream once for the whole batch, and each
/// request's output is token-identical to
/// [`Transformer::generate`] on the same packed model with the same seed.
///
/// The packed model is given one shared channel-parallel [`ThreadPool`]
/// sized by [`default_threads`] (`FINEQ_THREADS` override, else the
/// machine's available parallelism); parallel kernels are bit-identical to
/// serial, so the thread count is pure throughput, never output. Use
/// [`serve_packed_with_threads`] to pick the count explicitly.
///
/// # Panics
///
/// Panics if the quantizer configuration is not packable, the source model
/// is not dense, or `max_batch` is zero.
pub fn serve_packed(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
    max_batch: usize,
) -> (BatchScheduler, QuantizeReport) {
    serve_packed_with_threads(model, quantizer, config, max_batch, default_threads())
}

/// [`serve_packed`] with an explicit kernel thread count. The pool is
/// constructed **once** and shared by every forward pass the scheduler
/// runs (`threads == 1` installs no pool: the serial path, same output).
///
/// # Panics
///
/// Panics if the quantizer configuration is not packable, the source model
/// is not dense, `max_batch` is zero, or `threads` is zero.
pub fn serve_packed_with_threads(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
    max_batch: usize,
    threads: usize,
) -> (BatchScheduler, QuantizeReport) {
    assert!(threads > 0, "serving needs at least one kernel thread");
    let (mut packed, report) = quantize_model_packed(model, quantizer, config);
    if threads > 1 {
        packed.set_thread_pool(Some(Arc::new(ThreadPool::new(threads))));
    }
    (BatchScheduler::new(packed, max_batch), report)
}

/// Quantizes `model` to the packed serving format, row-shards every weight
/// site across `n_shards` workers (each slice round-tripped through the
/// versioned shard wire format), and wraps the result in a
/// [`ShardedScheduler`] — the one-call **sharded** serving entry point.
///
/// The scheduler's output is bit-identical to [`serve_packed`]'s for the
/// same requests at any shard count: sharding, like threading, is pure
/// execution topology. One shared [`ThreadPool`] sized by
/// [`default_threads`] runs the worker shards; use
/// [`serve_sharded_with_threads`] to pick the count explicitly.
///
/// # Panics
///
/// Panics if the quantizer configuration is not packable, the source model
/// is not dense, `max_batch` is zero, or `n_shards` is zero.
pub fn serve_sharded(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
    max_batch: usize,
    n_shards: usize,
) -> (ShardedScheduler, QuantizeReport) {
    serve_sharded_with_threads(model, quantizer, config, max_batch, n_shards, default_threads())
}

/// [`serve_sharded`] with an explicit thread count for the shard workers
/// (`threads == 1` installs no pool: shards run serially, same output).
///
/// # Panics
///
/// As [`serve_sharded`], plus if `threads` is zero.
pub fn serve_sharded_with_threads(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
    max_batch: usize,
    n_shards: usize,
    threads: usize,
) -> (ShardedScheduler, QuantizeReport) {
    assert!(threads > 0, "serving needs at least one kernel thread");
    let (packed, report) = quantize_model_packed(model, quantizer, config);
    let mut sharded = ShardedModel::new(&packed, n_shards);
    if threads > 1 {
        sharded.set_thread_pool(Some(Arc::new(ThreadPool::new(threads))));
    } else {
        sharded.set_thread_pool(None);
    }
    (ShardedScheduler::new(sharded, max_batch), report)
}

/// Quantizes `model` to the packed serving format, row-shards every weight
/// site across `replica_addrs.len()` **worker processes** (shipping each
/// replica of a shard the identical FNQS slice envelopes over the frame
/// protocol), and wraps the coordinator in a [`DistributedScheduler`] —
/// the one-call **multi-process** serving entry point.
///
/// `replica_addrs[shard]` lists the worker addresses (`tcp:host:port` or
/// `unix:/path`, each running [`fineq_lm::run_worker`] — the
/// `fineq-worker` binary) that replicate shard `shard`; the first is the
/// initial primary, the rest are hot spares for failover. The scheduler's
/// output is bit-identical to [`serve_packed`]'s for the same requests at
/// any shard/replica count, worker crashes included, as long as every
/// shard keeps one live replica.
///
/// # Errors
///
/// Returns the transport error if connecting to a worker or shipping its
/// slices fails.
///
/// # Panics
///
/// Panics if the quantizer configuration is not packable, the source model
/// is not dense, `max_batch` is zero, `replica_addrs` is empty, or any
/// shard has no replica addresses.
pub fn serve_distributed(
    model: &Transformer,
    quantizer: &FineQuantizer,
    config: &PipelineConfig,
    max_batch: usize,
    replica_addrs: &[Vec<String>],
) -> Result<(DistributedScheduler, QuantizeReport), TransportError> {
    let (packed, report) = quantize_model_packed(model, quantizer, config);
    let remote = RemoteShardedModel::connect(&packed, replica_addrs)?;
    Ok((DistributedScheduler::new(remote, max_batch), report))
}

/// Switches a scheduler's telemetry on: installs a fresh enabled
/// [`MetricsRegistry`] (request-lifecycle histograms, transport counters
/// when the model is distributed) and returns the handle — scrape it
/// with [`MetricsRegistry::render_text`] or serve it over HTTP with
/// [`fineq_core::MetricsServer`]. One call makes any `serve_*` entry
/// observable:
///
/// ```no_run
/// # use fineq::pipeline::*;
/// # let (mut scheduler, _) = serve_packed(
/// #     &fineq_lm::Transformer::zeros(fineq_lm::ModelConfig::new(8, 8, 1, 1, 8)),
/// #     &fineq_core::FineQuantizer::paper(), &PipelineConfig::default(), 4);
/// let registry = observe(&mut scheduler);
/// let _server = fineq_core::MetricsServer::serve("127.0.0.1:9185", move || {
///     registry.render_text()
/// });
/// ```
pub fn observe<M: fineq_lm::ServeModel>(
    scheduler: &mut fineq_lm::Scheduler<M>,
) -> Arc<MetricsRegistry> {
    let registry = Arc::new(MetricsRegistry::new());
    scheduler.set_telemetry(Arc::clone(&registry));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use fineq_core::FineQuantizer;
    use fineq_lm::builder::{build_fitted_model, BuilderSpec};
    use fineq_lm::corpus::Corpus;
    use fineq_lm::eval::perplexity;
    use fineq_lm::ServeRequest;
    use fineq_quant::Rtn;

    fn tiny_model() -> (Transformer, Corpus) {
        let corpus = Corpus::wiki_like(64, 77);
        let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 5);
        (model, corpus)
    }

    #[test]
    fn calibration_covers_every_site() {
        let (model, corpus) = tiny_model();
        let stream = corpus.generate(300, 1);
        let calib = collect_calibration(&model, stream.tokens(), 128);
        for l in 0..model.n_layers() {
            for site in WeightSite::ALL {
                let c = calib.site(l, site);
                let x = c.activations().expect("collected");
                assert_eq!(x.cols(), model.weight(l, site).cols(), "layer {l} {site:?}");
                assert!(x.rows() >= 290);
            }
        }
        assert!(calib.head().activations().is_some());
    }

    #[test]
    fn quantize_model_replaces_all_sites() {
        let (model, _) = tiny_model();
        let q = Rtn::new(2);
        let (qmodel, report) = quantize_model(&model, &q, None, &PipelineConfig::default());
        assert_eq!(report.sites.len(), model.n_layers() * 6);
        for l in 0..model.n_layers() {
            for site in WeightSite::ALL {
                assert_ne!(qmodel.weight(l, site), model.weight(l, site), "{l} {site:?}");
            }
        }
        // Head untouched by default.
        assert_eq!(qmodel.head(), model.head());
        // Tiny 32/48-column test matrices carry ~1 bit/weight of fp16
        // scale overhead on top of the 2-bit payload.
        assert!(report.avg_bits > 2.0 && report.avg_bits < 3.2, "{}", report.avg_bits);
    }

    #[test]
    fn fineq_model_tracks_fp16_closely() {
        let (model, corpus) = tiny_model();
        let test = corpus.generate(2_000, 9);
        let fp16 = perplexity(&model, test.tokens(), 256);
        let (qmodel, report) =
            quantize_model(&model, &FineQuantizer::paper(), None, &PipelineConfig::default());
        let qppl = perplexity(&qmodel, test.tokens(), 256);
        assert!(qppl >= fp16 * 0.9, "quantized should not be better: {qppl} vs {fp16}");
        assert!(qppl < fp16 * 20.0, "FineQ should stay usable: {qppl} vs {fp16}");
        // Tiny 32-column rows pad the 8-cluster blocks heavily (11 clusters
        // -> 2 blocks) and amortize fp16 scales badly; realistic channel
        // widths land at ~2.34 bits (asserted in the fineq-core tests).
        assert!(report.avg_bits < 5.0, "{}", report.avg_bits);
    }

    #[test]
    fn packed_pipeline_stores_packed_weights() {
        let (model, _) = tiny_model();
        let (pm, report) =
            quantize_model_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default());
        assert!(pm.is_fully_packed(), "every block site must hold PackedMatrix");
        assert_eq!(report.sites.len(), model.n_layers() * 6);
        // Head and embeddings stay dense fp32.
        assert_eq!(pm.head(), model.head());
        assert_eq!(pm.embedding(), model.embedding());
        // The packed model holds a fraction of the dense body bytes.
        assert!(pm.body_weight_bytes() * 3 < model.body_weight_bytes());
    }

    #[test]
    fn packed_pipeline_matches_dequantized_reference_model() {
        let (model, corpus) = tiny_model();
        let cfg = PipelineConfig::default();
        let q = FineQuantizer::paper();
        let (pm, preport) = quantize_model_packed(&model, &q, &cfg);
        let (dm, dreport) = quantize_model(&model, &q, None, &cfg);
        // Identical bit accounting: both route through the packed format.
        assert!((preport.avg_bits - dreport.avg_bits).abs() < 1e-9);
        // Identical logits up to fused-kernel accumulation order.
        let test = corpus.generate(512, 13);
        for chunk in test.tokens().chunks(128) {
            let lp = pm.forward(chunk);
            let ld = dm.forward(chunk);
            assert!(lp.sub(&ld).abs_max() < 1e-4, "{}", lp.sub(&ld).abs_max());
        }
        let pp = perplexity(&pm, test.tokens(), 128);
        let dp = perplexity(&dm, test.tokens(), 128);
        assert!((pp - dp).abs() < 1e-3 * dp, "packed ppl {pp} vs reference {dp}");
    }

    #[test]
    fn serve_packed_returns_a_scheduler_over_the_packed_model() {
        let (model, corpus) = tiny_model();
        let (mut sched, report) =
            serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 4);
        assert!(sched.model().is_fully_packed());
        assert_eq!(sched.max_batch(), 4);
        assert_eq!(report.sites.len(), model.n_layers() * 6);
        // A served request matches generate on the same packed model.
        let prompt = corpus.generate(5, 17).tokens().to_vec();
        let mut rng = fineq_tensor::Rng::seed_from(33);
        let expect = sched.model().generate(&prompt, 6, 0.7, &mut rng);
        sched
            .submit(ServeRequest { temperature: 0.7, seed: 33, ..ServeRequest::new(1, prompt, 6) })
            .expect("no KV budget configured");
        let done = sched.run();
        assert_eq!(done[0].generated, expect);
    }

    #[test]
    fn serve_sharded_matches_serve_packed_output() {
        let (model, corpus) = tiny_model();
        let cfg = PipelineConfig::default();
        let q = FineQuantizer::paper();
        let submit = |sub: &mut dyn FnMut(ServeRequest)| {
            for id in 0..3u64 {
                let prompt = corpus.generate(4, 200 + id).tokens().to_vec();
                sub(ServeRequest {
                    temperature: 0.8,
                    seed: 50 + id,
                    ..ServeRequest::new(id, prompt, 5)
                });
            }
        };
        let (mut plain, _) = serve_packed_with_threads(&model, &q, &cfg, 2, 1);
        submit(&mut |r| plain.submit(r).expect("no KV budget configured"));
        let reference = plain.run();
        for n_shards in [1usize, 3] {
            let (mut sched, report) = serve_sharded_with_threads(&model, &q, &cfg, 2, n_shards, 2);
            assert_eq!(sched.n_shards(), n_shards);
            assert_eq!(report.sites.len(), model.n_layers() * 6);
            submit(&mut |r| sched.submit(r).expect("no KV budget configured"));
            assert_eq!(sched.run(), reference, "{n_shards} shards");
        }
    }

    #[test]
    fn quantize_head_option_touches_head() {
        let (model, _) = tiny_model();
        let cfg = PipelineConfig { quantize_head: true, ..PipelineConfig::default() };
        let (qmodel, _) = quantize_model(&model, &Rtn::new(4), None, &cfg);
        assert_ne!(qmodel.head(), model.head());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = vstack(&[a, b]);
        assert_eq!((s.rows(), s.cols()), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }
}
