//! Whole-model quantization pipeline.
//!
//! Mirrors the paper's evaluation methodology: the quantization algorithm
//! runs **offline** on every linear layer of the transformer body;
//! activation-aware methods (GPTQ, OWQ) receive a small calibration set of
//! real layer inputs collected from a forward pass over corpus text.
//! Embeddings and the readout head stay in full precision, the standard
//! protocol of the GPTQ/OWQ line of work the paper compares against.

use fineq_lm::{Transformer, WeightSite};
use fineq_quant::{Calibration, QuantMetrics, WeightQuantizer};
use fineq_tensor::Matrix;

/// Pipeline options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Calibration tokens to run through the model.
    pub calib_tokens: usize,
    /// Window length of the calibration forward passes.
    pub calib_window: usize,
    /// Also quantize the readout head (off by default; kept for ablation).
    pub quantize_head: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { calib_tokens: 1024, calib_window: 256, quantize_head: false }
    }
}

/// Calibration activations for every linear site in the model.
#[derive(Debug, Clone)]
pub struct ModelCalibration {
    /// `layers[l]` holds the calibration set per [`WeightSite`].
    sites: Vec<[Calibration; 6]>,
    /// Inputs to the readout head.
    head: Calibration,
}

impl ModelCalibration {
    /// The calibration set for `(layer, site)`.
    pub fn site(&self, layer: usize, site: WeightSite) -> &Calibration {
        let idx = WeightSite::ALL.iter().position(|&s| s == site).expect("known site");
        &self.sites[layer][idx]
    }

    /// The calibration set for the readout head.
    pub fn head(&self) -> &Calibration {
        &self.head
    }
}

/// Stacks matrices vertically (rows concatenated).
fn vstack(parts: &[Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "nothing to stack");
    let cols = parts[0].cols();
    let rows: usize = parts.iter().map(|m| m.rows()).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in parts {
        assert_eq!(m.cols(), cols, "column mismatch in vstack");
        data.extend_from_slice(m.as_slice());
    }
    Matrix::from_vec(rows, cols, data)
}

/// Runs calibration text through the model and collects the inputs seen by
/// every linear layer.
///
/// # Panics
///
/// Panics if `tokens` is shorter than two positions.
pub fn collect_calibration(
    model: &Transformer,
    tokens: &[usize],
    window: usize,
) -> ModelCalibration {
    assert!(tokens.len() >= 2, "calibration stream too short");
    let n_layers = model.n_layers();
    let mut per_site: Vec<[Vec<Matrix>; 6]> = (0..n_layers).map(|_| Default::default()).collect();
    let mut head_parts: Vec<Matrix> = Vec::new();
    for chunk in tokens.chunks(window.max(2)) {
        if chunk.len() < 2 {
            continue;
        }
        let (_, trace) = model.forward_with_trace(chunk);
        for (l, lt) in trace.layers.into_iter().enumerate() {
            per_site[l][0].push(lt.attn_input.clone()); // Q
            per_site[l][1].push(lt.attn_input); // K (same input)
            per_site[l][2].push(Matrix::zeros(0, 0)); // V shares Q's input; filled below
            per_site[l][3].push(lt.attn_ctx);
            per_site[l][4].push(lt.ffn_input);
            per_site[l][5].push(lt.ffn_mid);
        }
        head_parts.push(trace.final_hidden);
    }
    // V shares the attention input; reuse Q's collected parts.
    let sites = per_site
        .into_iter()
        .map(|mut site_parts| {
            let q = vstack(&site_parts[0]);
            let k = q.clone();
            let v = q.clone();
            let o = vstack(&site_parts[3]);
            let up = vstack(&site_parts[4]);
            let down = vstack(&site_parts[5]);
            site_parts = Default::default();
            let _ = site_parts;
            [
                Calibration::from_activations(q),
                Calibration::from_activations(k),
                Calibration::from_activations(v),
                Calibration::from_activations(o),
                Calibration::from_activations(up),
                Calibration::from_activations(down),
            ]
        })
        .collect();
    ModelCalibration { sites, head: Calibration::from_activations(vstack(&head_parts)) }
}

/// Per-site outcome of a whole-model quantization.
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// Block index.
    pub layer: usize,
    /// Which linear weight.
    pub site: WeightSite,
    /// Storage cost reported by the quantizer.
    pub avg_bits: f64,
    /// Reconstruction error metrics.
    pub metrics: QuantMetrics,
}

/// Outcome of a whole-model quantization.
#[derive(Debug, Clone)]
pub struct QuantizeReport {
    /// Per-site details.
    pub sites: Vec<SiteReport>,
    /// Parameter-weighted average storage bits across quantized sites.
    pub avg_bits: f64,
}

/// Quantizes every linear layer of `model` with `quantizer`, returning the
/// quantized model and a report.
///
/// `calibration` may be `None` for data-free methods; activation-aware
/// methods then fall back to identity Hessians.
pub fn quantize_model(
    model: &Transformer,
    quantizer: &dyn WeightQuantizer,
    calibration: Option<&ModelCalibration>,
    config: &PipelineConfig,
) -> (Transformer, QuantizeReport) {
    let mut out = model.clone();
    let mut sites = Vec::new();
    let mut bit_weighted = 0.0f64;
    let mut params = 0usize;
    let none = Calibration::none();
    for layer in 0..model.n_layers() {
        for site in WeightSite::ALL {
            let w = model.weight(layer, site);
            let calib = calibration.map(|c| c.site(layer, site)).unwrap_or(&none);
            let result = quantizer.quantize(w, calib);
            let metrics = QuantMetrics::between(w, &result.dequantized);
            bit_weighted += result.avg_bits * w.len() as f64;
            params += w.len();
            sites.push(SiteReport { layer, site, avg_bits: result.avg_bits, metrics });
            *out.weight_mut(layer, site) = result.dequantized;
        }
    }
    if config.quantize_head {
        let calib = calibration.map(|c| c.head()).unwrap_or(&none);
        let result = quantizer.quantize(model.head(), calib);
        bit_weighted += result.avg_bits * model.head().len() as f64;
        params += model.head().len();
        *out.head_mut() = result.dequantized;
    }
    let avg_bits = if params > 0 { bit_weighted / params as f64 } else { 0.0 };
    (out, QuantizeReport { sites, avg_bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fineq_core::FineQuantizer;
    use fineq_lm::builder::{build_fitted_model, BuilderSpec};
    use fineq_lm::corpus::Corpus;
    use fineq_lm::eval::perplexity;
    use fineq_quant::Rtn;

    fn tiny_model() -> (Transformer, Corpus) {
        let corpus = Corpus::wiki_like(64, 77);
        let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 5);
        (model, corpus)
    }

    #[test]
    fn calibration_covers_every_site() {
        let (model, corpus) = tiny_model();
        let stream = corpus.generate(300, 1);
        let calib = collect_calibration(&model, stream.tokens(), 128);
        for l in 0..model.n_layers() {
            for site in WeightSite::ALL {
                let c = calib.site(l, site);
                let x = c.activations().expect("collected");
                assert_eq!(x.cols(), model.weight(l, site).cols(), "layer {l} {site:?}");
                assert!(x.rows() >= 290);
            }
        }
        assert!(calib.head().activations().is_some());
    }

    #[test]
    fn quantize_model_replaces_all_sites() {
        let (model, _) = tiny_model();
        let q = Rtn::new(2);
        let (qmodel, report) = quantize_model(&model, &q, None, &PipelineConfig::default());
        assert_eq!(report.sites.len(), model.n_layers() * 6);
        for l in 0..model.n_layers() {
            for site in WeightSite::ALL {
                assert_ne!(qmodel.weight(l, site), model.weight(l, site), "{l} {site:?}");
            }
        }
        // Head untouched by default.
        assert_eq!(qmodel.head(), model.head());
        // Tiny 32/48-column test matrices carry ~1 bit/weight of fp16
        // scale overhead on top of the 2-bit payload.
        assert!(report.avg_bits > 2.0 && report.avg_bits < 3.2, "{}", report.avg_bits);
    }

    #[test]
    fn fineq_model_tracks_fp16_closely() {
        let (model, corpus) = tiny_model();
        let test = corpus.generate(2_000, 9);
        let fp16 = perplexity(&model, test.tokens(), 256);
        let (qmodel, report) =
            quantize_model(&model, &FineQuantizer::paper(), None, &PipelineConfig::default());
        let qppl = perplexity(&qmodel, test.tokens(), 256);
        assert!(qppl >= fp16 * 0.9, "quantized should not be better: {qppl} vs {fp16}");
        assert!(qppl < fp16 * 20.0, "FineQ should stay usable: {qppl} vs {fp16}");
        // Tiny 32-column rows pad the 8-cluster blocks heavily (11 clusters
        // -> 2 blocks) and amortize fp16 scales badly; realistic channel
        // widths land at ~2.34 bits (asserted in the fineq-core tests).
        assert!(report.avg_bits < 5.0, "{}", report.avg_bits);
    }

    #[test]
    fn quantize_head_option_touches_head() {
        let (model, _) = tiny_model();
        let cfg = PipelineConfig { quantize_head: true, ..PipelineConfig::default() };
        let (qmodel, _) = quantize_model(&model, &Rtn::new(4), None, &cfg);
        assert_ne!(qmodel.head(), model.head());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = vstack(&[a, b]);
        assert_eq!((s.rows(), s.cols()), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }
}
