//! Sharded-serving determinism suite: row-sharding the packed weights
//! across worker shards must be **exactly** invisible in every output —
//! `assert_eq!`, not approximate comparison — from the gather kernels
//! through batched steps to whole scheduler runs, at shard counts covering
//! the trivial (1), even (2), uneven (3) and more-shards-than-some-sites-
//! have-rows (5) cases. The wire format is on the same path: every
//! `ShardedModel` slice is round-tripped through the versioned shard
//! header at construction, and this suite additionally corrupts those
//! bytes on purpose.

use fineq::core::serialize::{
    fnv1a32, fnv1a32_chain, shard_from_bytes, shard_to_bytes, DecodeError, ShardHeader,
};
use fineq::core::{FineQuantizer, ThreadPool};
use fineq::lm::shard::site_id;
use fineq::lm::{
    BatchKvCache, BatchScheduler, ModelConfig, ServeRequest, ShardedModel, ShardedScheduler,
    Transformer, WeightSite,
};
use fineq::pipeline::{serve_packed_with_threads, serve_sharded_with_threads, PipelineConfig};
use fineq::tensor::{Matrix, Rng};
use std::sync::Arc;

/// Shard counts the suite sweeps; 5 exceeds the row count of the
/// `d_ff = 1` model's FFN-up site (1 output channel), exercising empty
/// shard ranges.
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 5];

/// A fully packed random model. `d_ff = 1` produces a 1-channel FFN-up
/// site (1 row) and a 1-column FFN-down site.
fn packed_model(d_ff: usize, seed: u64) -> Transformer {
    let cfg = ModelConfig::new(24, 8, 2, 2, d_ff);
    let mut m = Transformer::zeros(cfg.clone());
    let mut rng = Rng::seed_from(seed);
    *m.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    *m.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    let q = FineQuantizer::paper();
    for l in 0..m.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = m.weight(l, site);
                (w.rows(), w.cols())
            };
            let dense = Matrix::from_fn(r, c, |_, _| {
                let v = rng.laplace(0.0, 0.04);
                if rng.chance(0.04) {
                    v * 10.0
                } else {
                    v
                }
            });
            *m.weight_mut(l, site) = q.quantize_packed(&dense).into();
        }
    }
    m
}

/// Batched steps of the sharded model equal the unsharded transformer's
/// bit for bit — ragged slots, every shard count, with and without a pool,
/// including the 1-channel weight site where shards sit out.
#[test]
fn sharded_batch_steps_are_bit_identical_to_unsharded() {
    for (d_ff, seed) in [(16usize, 1u64), (1, 2)] {
        let model = packed_model(d_ff, seed);
        let cfg = model.config().clone();
        let steps: [(Vec<usize>, Vec<usize>); 3] =
            [(vec![1, 2, 3], vec![0, 1, 2]), (vec![4, 5], vec![0, 2]), (vec![6], vec![2])];
        let mut reference_cache = BatchKvCache::new(cfg.n_layers, cfg.d_model, 3);
        let reference: Vec<Matrix> = steps
            .iter()
            .map(|(t, s)| model.forward_step_batch(t, s, &mut reference_cache))
            .collect();
        for n_shards in SHARD_COUNTS {
            for threads in [1usize, 3] {
                let mut sharded = ShardedModel::new(&model, n_shards);
                sharded.set_thread_pool((threads > 1).then(|| Arc::new(ThreadPool::new(threads))));
                let mut cache = BatchKvCache::new(cfg.n_layers, cfg.d_model, 3);
                for (i, (t, s)) in steps.iter().enumerate() {
                    let logits = sharded.forward_step_batch(t, s, &mut cache);
                    assert_eq!(
                        logits, reference[i],
                        "d_ff {d_ff} shards {n_shards} threads {threads} step {i}"
                    );
                }
                assert_eq!(cache, reference_cache, "K/V histories must match bit for bit");
            }
        }
    }
}

/// Whole scheduler runs — admission, sampling, eos retirement, backfill —
/// are identical between `BatchScheduler` and `ShardedScheduler` at every
/// shard count (the acceptance contract, also gated in CI).
#[test]
fn sharded_scheduler_runs_equal_unsharded_at_every_shard_count() {
    let model = packed_model(16, 3);
    let submit_all = |mut submit: Box<dyn FnMut(ServeRequest) + '_>| {
        let mut rng = Rng::seed_from(77);
        for id in 0..6u64 {
            let len = 3 + (id as usize % 3);
            let prompt: Vec<usize> = (0..len).map(|_| rng.below(24)).collect();
            submit(ServeRequest {
                temperature: 0.85,
                seed: 500 + id,
                eos: Some(0),
                ..ServeRequest::new(id, prompt, 4 + id as usize % 4)
            });
        }
    };
    let reference = {
        let mut sched = BatchScheduler::new(model.clone(), 2);
        submit_all(Box::new(|r| sched.submit(r).expect("admitted")));
        sched.run()
    };
    assert_eq!(reference.len(), 6);
    for n_shards in SHARD_COUNTS {
        let mut sched = ShardedScheduler::new(ShardedModel::new(&model, n_shards), 2);
        assert_eq!(sched.n_shards(), n_shards);
        submit_all(Box::new(|r| sched.submit(r).expect("admitted")));
        let done = sched.run();
        assert_eq!(done, reference, "sharding must be invisible at {n_shards} shards");
        assert_eq!(sched.cache().total_tokens(), 0, "retirement frees K/V");
    }
}

/// The pipeline entry (`serve_sharded_with_threads`) against the unsharded
/// pipeline on a quantized-from-dense model, shard-parallel pool installed.
#[test]
fn pipeline_sharded_serving_matches_packed_serving() {
    use fineq::lm::builder::{build_fitted_model, BuilderSpec};
    use fineq::lm::corpus::Corpus;
    let corpus = Corpus::wiki_like(64, 5);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 2);
    let cfg = PipelineConfig::default();
    let q = FineQuantizer::paper();
    let requests: Vec<ServeRequest> = (0..5u64)
        .map(|id| {
            let prompt = corpus.generate(3 + id as usize % 4, 80 + id).tokens().to_vec();
            ServeRequest { temperature: 0.9, seed: 40 + id, ..ServeRequest::new(id, prompt, 6) }
        })
        .collect();
    let reference = {
        let (mut sched, _) = serve_packed_with_threads(&model, &q, &cfg, 3, 1);
        requests.iter().for_each(|r| sched.submit(r.clone()).expect("fits the budget"));
        sched.run()
    };
    for n_shards in [2usize, 5] {
        let (mut sched, _) = serve_sharded_with_threads(&model, &q, &cfg, 3, n_shards, 3);
        assert_eq!(sched.thread_pool().expect("pool installed").threads(), 3);
        requests.iter().for_each(|r| sched.submit(r.clone()).expect("fits the budget"));
        assert_eq!(sched.run(), reference, "{n_shards} shards");
    }
}

/// KV-limited admission composes with sharding: the sharded scheduler
/// under a one-sequence budget still matches the unrestricted unsharded
/// run per request, and its live cache never exceeds the budget.
#[test]
fn kv_budget_on_the_sharded_scheduler_preserves_outputs() {
    let model = packed_model(16, 4);
    let requests: Vec<ServeRequest> = (0..4u64)
        .map(|id| ServeRequest {
            temperature: 0.8,
            seed: 90 + id,
            ..ServeRequest::new(id, vec![1 + id as usize, 2, 3], 4)
        })
        .collect();
    let mut reference = {
        let mut sched = BatchScheduler::new(model.clone(), 2);
        requests.iter().for_each(|r| sched.submit(r.clone()).expect("fits the budget"));
        sched.run()
    };
    reference.sort_by_key(|f| f.id);
    let plan = fineq::lm::ServingMemory::from_model(&model, 1e9);
    let budget = plan.kv_cache_bytes(7.0); // one worst case: 3 prompt + 4 new
    let mut sched = ShardedScheduler::new(ShardedModel::new(&model, 3), 2);
    sched.set_kv_budget(plan.clone(), budget).expect("queue is empty");
    requests.iter().for_each(|r| sched.submit(r.clone()).expect("fits the budget"));
    while !sched.is_idle() {
        sched.step();
        assert!(sched.active() <= 1, "budget admits one sequence at a time");
        assert!(plan.kv_cache_bytes_used(sched.cache()) <= budget);
    }
    let mut done = sched.take_finished();
    done.sort_by_key(|f| f.id);
    assert_eq!(done, reference);
}

/// Wire-format round trip of a whole sharded model: every slice
/// re-serializes under its plan header and decodes back identical; headers
/// carry the right ranges; rebuilt models compare equal.
#[test]
fn sharded_model_wire_round_trip() {
    let model = packed_model(16, 6);
    let sharded = ShardedModel::new(&model, 3);
    let plan = sharded.plan().clone();
    for l in 0..model.n_layers() {
        for site in WeightSite::ALL {
            let sp = plan.site(l, site);
            let mut covered = 0usize;
            for (offset, slice) in sharded.site_slices(l, site) {
                // Find this slice's shard to rebuild its header.
                let shard = (0..plan.n_shards())
                    .find(|&s| sp.range(s) == (*offset, offset + slice.rows()))
                    .expect("slice matches a planned range");
                let header = ShardHeader {
                    shard_index: shard as u16,
                    n_shards: plan.n_shards() as u16,
                    site_id: site_id(l, site),
                    row_start: *offset as u32,
                    total_rows: sp.rows as u32,
                };
                let bytes = shard_to_bytes(slice, &header);
                let (got, back) = shard_from_bytes(&bytes).expect("round trip");
                assert_eq!(got, header);
                assert_eq!(&back, slice);
                // The decoded site_id maps back to the exact weight site.
                let id = got.site_id as usize;
                assert_eq!(
                    (
                        id / WeightSite::ALL.len(),
                        WeightSite::from_index(id % WeightSite::ALL.len())
                    ),
                    (l, site)
                );
                covered += slice.rows();
            }
            assert_eq!(covered, sp.rows, "slices tile layer {l} {site:?}");
        }
    }
    // Rebuilding from the same plan yields an equal model (and PartialEq
    // ignores the pool, like Transformer's).
    let rebuilt = ShardedModel::from_plan(&model, plan);
    assert_eq!(rebuilt, sharded);
}

/// Shipped bytes that lie are rejected: wrong version, corrupt payload,
/// impossible range — exercised on real slices of a sharded model.
#[test]
fn sharded_wire_rejects_tampered_bytes() {
    let model = packed_model(16, 7);
    let sharded = ShardedModel::new(&model, 2);
    let (offset, slice) = &sharded.site_slices(0, WeightSite::AttnQ)[1];
    let sp = sharded.plan().site(0, WeightSite::AttnQ);
    let header = ShardHeader {
        shard_index: 1,
        n_shards: 2,
        site_id: site_id(0, WeightSite::AttnQ),
        row_start: *offset as u32,
        total_rows: sp.rows as u32,
    };
    let bytes = shard_to_bytes(slice, &header);

    let mut wrong_version = bytes.clone();
    wrong_version[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert_eq!(shard_from_bytes(&wrong_version).unwrap_err(), DecodeError::BadVersion(7));

    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x20;
    assert_eq!(shard_from_bytes(&corrupt).unwrap_err(), DecodeError::BadChecksum);

    // Corrupt routing metadata (site_id flip) is caught by the checksum
    // too — the header is covered, not just the payload.
    let mut corrupt_header = bytes.clone();
    corrupt_header[10] ^= 0x02;
    assert_eq!(shard_from_bytes(&corrupt_header).unwrap_err(), DecodeError::BadChecksum);

    let mut bad_range = bytes.clone();
    bad_range[18..22].copy_from_slice(&1u32.to_le_bytes()); // total_rows < slice
    let c = fnv1a32_chain(fnv1a32(&bad_range[..22]), &bad_range[26..]);
    bad_range[22..26].copy_from_slice(&c.to_le_bytes()); // valid checksum, lying range
    assert_eq!(shard_from_bytes(&bad_range).unwrap_err(), DecodeError::BadRange);

    assert_eq!(shard_from_bytes(&bytes[..20]).unwrap_err(), DecodeError::Truncated);
}
