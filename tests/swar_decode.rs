//! Differential harness for the SWAR wide-word decode: the wide path must
//! be **bit-identical** to the scalar per-cluster LUT walk everywhere it
//! can possibly be reached — `assert_eq!`, never approximate.
//!
//! Layer by layer:
//!
//! 1. block level — `decode_block_swar` against `SPLIT_LANES` /
//!    `DECODE_INTS` over the **full** `code × six` space (every cluster
//!    position, plus random mixed blocks);
//! 2. channel level — `dot` (SWAR full-block fast path) against
//!    `dot_scalar` (LUT reference) for every partial-tail length 1..=24,
//!    alone and behind a full block, under every cluster code;
//! 3. matrix level — seeded-random whole-matrix sweeps (odd shapes,
//!    1-row, 1-col) across `matvec` / `matmul` / `matmul_t`;
//! 4. serving level — whole `BatchScheduler` / `ShardedScheduler` runs at
//!    threads {1, 2, 4, 7} × shards {1, 2, 3, 5}, all bit-identical to
//!    the serial unsharded reference.
//!
//! Together these are the proof obligation the SWAR rewrite carries: the
//! batch-composition, thread-count and shard-count determinism contracts
//! of PRs 2–4 survive because the decoded integers and the accumulation
//! order never changed.

use fineq::core::kernels::{DECODE_INTS, LANE_WIDTHS, SPLIT_LANES};
use fineq::core::pack::{BLOCK_BYTES, CLUSTERS_PER_BLOCK, WEIGHTS_PER_BLOCK};
use fineq::core::{decode_block_swar, ClusterCode, FineQuantizer, PackedChannel, PackedMatrix};
use fineq::lm::builder::{build_fitted_model, BuilderSpec};
use fineq::lm::corpus::Corpus;
use fineq::lm::ServeRequest;
use fineq::pipeline::{serve_packed_with_threads, serve_sharded_with_threads, PipelineConfig};
use fineq::tensor::{Matrix, Rng};

/// The scalar reference for one whole block: the per-cluster LUT walk.
fn split_lanes_block(idx: u8, data: u64) -> ([i8; WEIGHTS_PER_BLOCK], [i8; WEIGHTS_PER_BLOCK]) {
    let mut two = [0i8; WEIGHTS_PER_BLOCK];
    let mut three = [0i8; WEIGHTS_PER_BLOCK];
    for k in 0..CLUSTERS_PER_BLOCK {
        let code = ((idx >> (2 * (k / 2))) & 0b11) as usize;
        let six = ((data >> (6 * k)) & 0x3F) as usize;
        let (t, h) = SPLIT_LANES[code][six];
        for j in 0..3 {
            two[k * 3 + j] = t[j];
            three[k * 3 + j] = h[j];
        }
    }
    (two, three)
}

/// Exhaustive `code × six` coverage: every combination replicated across
/// all clusters, and every combination alone at each of the 8 cluster
/// positions — 4 × 64 × 9 block decodes, each checked lane for lane
/// against the LUT walk and summed back against `DECODE_INTS`.
#[test]
fn swar_decode_covers_the_full_code_six_space() {
    for code in 0..4u8 {
        let idx = code * 0b0101_0101;
        for six in 0..64u64 {
            let everywhere = (0..CLUSTERS_PER_BLOCK).fold(0u64, |d, k| d | (six << (6 * k)));
            for data in
                std::iter::once(everywhere).chain((0..CLUSTERS_PER_BLOCK).map(|k| six << (6 * k)))
            {
                let (two, three) = decode_block_swar(idx, data);
                assert_eq!(
                    (two, three),
                    split_lanes_block(idx, data),
                    "code {code} six {six:06b} data {data:012x}"
                );
                // The class split must also sum back to the raw decode
                // table (the accelerator's reference semantics).
                for k in 0..CLUSTERS_PER_BLOCK {
                    let six_k = ((data >> (6 * k)) & 0x3F) as usize;
                    for j in 0..3 {
                        assert_eq!(
                            two[k * 3 + j] + three[k * 3 + j],
                            DECODE_INTS[code as usize][six_k][j],
                            "code {code} cluster {k} lane {j}"
                        );
                    }
                }
            }
        }
    }
}

/// Random mixed blocks: arbitrary index bytes (all four pair codes
/// differing) and arbitrary 48-bit words, including bit patterns packing
/// never emits (negative-zero fields) — the decoder is total on the wire
/// format.
#[test]
fn swar_decode_matches_lut_walk_on_random_mixed_blocks() {
    let mut rng = Rng::seed_from(0x5AAB);
    for trial in 0..50_000 {
        let idx = rng.below(256) as u8;
        let data = (rng.below(1 << 24) as u64) | ((rng.below(1 << 24) as u64) << 24);
        assert_eq!(
            decode_block_swar(idx, data),
            split_lanes_block(idx, data),
            "trial {trial}: idx {idx:08b} data {data:012x}"
        );
    }
}

/// A packed channel of exactly `len` weights with seeded-random codes and
/// in-range field values — constructed through `PackedChannel::pack`, so
/// every cluster code (not just the ones a real quantizer favours) lands
/// in the tail.
fn random_channel(len: usize, rng: &mut Rng) -> PackedChannel {
    let n_clusters = len.div_ceil(3);
    let codes: Vec<ClusterCode> = (0..n_clusters.div_ceil(2))
        .map(|_| ClusterCode::ALL[rng.below(ClusterCode::ALL.len())])
        .collect();
    let quantized: Vec<[i32; 3]> =
        (0..n_clusters).map(|_| [0, 1, 2].map(|_| rng.below(7) as i32 - 3)).collect();
    PackedChannel::pack(0.3, 0.1, len, &codes, &quantized)
}

/// Channel-level differential: `dot` (SWAR fast path + per-lane tail)
/// against `dot_scalar` (pure LUT walk) and against an independent
/// reconstruction from `cluster_ints` + `LANE_WIDTHS` — every partial
/// tail length 1..=24, bare and behind one full block, many seeds.
#[test]
fn dot_equals_scalar_reference_for_every_tail_length() {
    let mut rng = Rng::seed_from(0xD1FF);
    for tail in 1..=WEIGHTS_PER_BLOCK {
        for lead_blocks in [0usize, 1, 2] {
            for round in 0..8 {
                let len = lead_blocks * WEIGHTS_PER_BLOCK + tail;
                let ch = random_channel(len, &mut rng);
                assert_eq!(ch.data_bytes(), len.div_ceil(3).div_ceil(8) * BLOCK_BYTES);
                let x: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
                let fused = ch.dot(&x);
                assert_eq!(
                    fused,
                    ch.dot_scalar(&x),
                    "tail {tail} lead {lead_blocks} round {round}"
                );
                // Third decoder: the pack-module bit unpacker, accumulated
                // with the kernels' exact expression and order.
                let (mut acc2, mut acc3) = (0.0f32, 0.0f32);
                for (i, &xv) in x.iter().enumerate() {
                    let (k, j) = (i / 3, i % 3);
                    let q = ch.cluster_ints(k)[j];
                    let (two, three) = match LANE_WIDTHS[ch.code_of(k).bits() as usize][j] {
                        2 => (q, 0),
                        3 => (0, q),
                        _ => (0, 0),
                    };
                    acc2 += two as f32 * xv;
                    acc3 += three as f32 * xv;
                }
                let reference = ch.scale2() * acc2 + ch.scale3() * acc3;
                assert_eq!(fused, reference, "tail {tail} lead {lead_blocks} round {round}");
                // Dequantize must agree element-wise with the same walk.
                let mut dq = vec![f32::NAN; len];
                ch.dequantize_into(&mut dq);
                for (i, &v) in dq.iter().enumerate() {
                    let (k, j) = (i / 3, i % 3);
                    let q = ch.cluster_ints(k)[j];
                    let expect = match LANE_WIDTHS[ch.code_of(k).bits() as usize][j] {
                        2 => q as f32 * ch.scale2(),
                        3 => q as f32 * ch.scale3(),
                        _ => 0.0,
                    };
                    assert_eq!(v, expect, "weight {i} of len {len}");
                }
            }
        }
    }
}

fn random_packed(rows: usize, cols: usize, seed: u64) -> PackedMatrix {
    let mut rng = Rng::seed_from(seed);
    let w = Matrix::from_fn(rows, cols, |_, _| {
        let v = rng.laplace(0.0, 0.02);
        if rng.chance(0.04) {
            v * 10.0
        } else {
            v
        }
    });
    FineQuantizer::paper().quantize_packed(&w)
}

/// Matrix-level differential sweep: seeded-random matrices in odd shapes
/// (1-row, 1-col, partial tails, widths crossing several blocks) — every
/// GEMV/GEMM output element must equal the scalar `dot_scalar` reference
/// exactly, through the grouped SWAR kernel and both GEMM orientations.
#[test]
fn whole_matrix_kernels_equal_the_scalar_reference() {
    for (rows, cols, seed) in [
        (1usize, 1usize, 81u64),
        (1, 24, 82),
        (5, 1, 83),
        (4, 24, 84),
        (7, 47, 85),
        (16, 93, 86),
        (33, 121, 87),
    ] {
        let packed = random_packed(rows, cols, seed);
        let mut rng = Rng::seed_from(seed ^ 0xD1F);
        let x: Vec<f32> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
        let a = Matrix::from_fn(5, cols, |_, _| rng.normal(0.0, 1.0));
        let xm = Matrix::from_fn(cols, 3, |_, _| rng.normal(0.0, 1.0));
        let scalar_mv: Vec<f32> = packed.channels().iter().map(|c| c.dot_scalar(&x)).collect();
        assert_eq!(packed.matvec(&x), scalar_mv, "{rows}x{cols} matvec");
        let mt = packed.matmul_t(&a);
        for t in 0..a.rows() {
            for (r, ch) in packed.channels().iter().enumerate() {
                assert_eq!(mt[(t, r)], ch.dot_scalar(a.row(t)), "{rows}x{cols} matmul_t ({t},{r})");
            }
        }
        let mm = packed.matmul(&xm);
        for c in 0..xm.cols() {
            let col: Vec<f32> = (0..cols).map(|i| xm[(i, c)]).collect();
            for (r, ch) in packed.channels().iter().enumerate() {
                assert_eq!(mm[(r, c)], ch.dot_scalar(&col), "{rows}x{cols} matmul ({r},{c})");
            }
        }
    }
}

/// Serving-level differential: complete scheduler runs over the SWAR
/// kernels at every thread × shard combination — admission, sampling,
/// retirement included — must be identical to the serial unsharded
/// reference, finished sequence for finished sequence.
#[test]
fn scheduler_runs_are_identical_at_all_thread_and_shard_counts() {
    let corpus = Corpus::wiki_like(64, 5);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 2);
    let cfg = PipelineConfig::default();
    let q = FineQuantizer::paper();
    let submit_all = |sub: &mut dyn FnMut(ServeRequest)| {
        for id in 0..6u64 {
            let prompt = corpus.generate(3 + id as usize % 4, 800 + id).tokens().to_vec();
            sub(ServeRequest {
                temperature: 0.85,
                seed: 640 + id,
                eos: Some(0),
                ..ServeRequest::new(id, prompt, 4 + id as usize % 3)
            });
        }
    };
    let reference = {
        let (mut sched, _) = serve_packed_with_threads(&model, &q, &cfg, 2, 1);
        submit_all(&mut |r| sched.submit(r).expect("no KV budget configured"));
        sched.run()
    };
    assert_eq!(reference.len(), 6);
    for threads in [1usize, 2, 4, 7] {
        let (mut sched, _) = serve_packed_with_threads(&model, &q, &cfg, 2, threads);
        submit_all(&mut |r| sched.submit(r).expect("no KV budget configured"));
        assert_eq!(sched.run(), reference, "unsharded @ {threads} threads");
        for shards in [1usize, 2, 3, 5] {
            let (mut sched, _) = serve_sharded_with_threads(&model, &q, &cfg, 2, shards, threads);
            submit_all(&mut |r| sched.submit(r).expect("no KV budget configured"));
            assert_eq!(sched.run(), reference, "{shards} shards @ {threads} threads");
        }
    }
}
