//! Integration tests of the batched serving engine: the continuous-batching
//! scheduler over a packed model, end to end through the public API.
//!
//! The central property: batching is **invisible** to any single request.
//! Whatever the batch size, admission order, or backfill timing, a request
//! produces token-identical output to `Transformer::generate` on the same
//! model with the same seed, because every per-sequence arithmetic step of
//! `forward_step_batch` is ordered exactly as in `forward_step`.

use fineq::core::FineQuantizer;
use fineq::lm::builder::{build_fitted_model, BuilderSpec};
use fineq::lm::corpus::Corpus;
use fineq::lm::memory::ServingMemory;
use fineq::lm::{BatchKvCache, BatchScheduler, FinishReason, KvCache, ServeRequest};
use fineq::pipeline::{serve_packed, PipelineConfig};
use fineq::tensor::Rng;

fn fitted_tiny() -> (fineq::lm::Transformer, Corpus) {
    let corpus = Corpus::wiki_like(64, 5);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 2);
    (model, corpus)
}

/// Batch-of-1 through the full packed serving pipeline reproduces
/// `generate` on the packed model, token for token.
#[test]
fn packed_batch_of_one_is_token_identical_to_generate() {
    let (model, corpus) = fitted_tiny();
    let (mut sched, _) =
        serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 1);
    let prompt = corpus.generate(7, 91).tokens().to_vec();
    let mut rng = Rng::seed_from(4242);
    let expect = sched.model().generate(&prompt, 10, 0.9, &mut rng);
    sched
        .submit(ServeRequest { temperature: 0.9, seed: 4242, ..ServeRequest::new(0, prompt, 10) })
        .expect("no KV budget configured");
    let done = sched.run();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].generated, expect);
    assert_eq!(done[0].reason, FinishReason::MaxTokens);
}

/// Eight requests through three packed slots: every continuation matches
/// its solo reference despite slot backfill happening mid-decode.
#[test]
fn packed_continuous_batching_matches_solo_references() {
    let (model, corpus) = fitted_tiny();
    let (mut sched, _) =
        serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 3);
    let mut expected = Vec::new();
    for id in 0..8u64 {
        let prompt = corpus.generate(3 + id as usize % 4, 200 + id).tokens().to_vec();
        let n = 3 + id as usize % 5;
        let mut rng = Rng::seed_from(500 + id);
        expected.push(sched.model().generate(&prompt, n, 0.85, &mut rng));
        sched
            .submit(ServeRequest {
                temperature: 0.85,
                seed: 500 + id,
                ..ServeRequest::new(id, prompt, n)
            })
            .expect("no KV budget configured");
    }
    let mut done = sched.run();
    assert_eq!(done.len(), 8);
    done.sort_by_key(|f| f.id);
    for (id, fin) in done.iter().enumerate() {
        assert_eq!(fin.generated, expected[id], "request {id} diverged under batching");
    }
}

/// Stepping a batch never exceeds `max_batch`, retires everything
/// eventually, and leaves the scheduler reusable for a second wave.
#[test]
fn scheduler_drains_and_accepts_a_second_wave() {
    let (model, corpus) = fitted_tiny();
    let (mut sched, _) =
        serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 2);
    for wave in 0..2u64 {
        for id in 0..4u64 {
            let prompt = corpus.generate(4, 300 + 10 * wave + id).tokens().to_vec();
            sched
                .submit(ServeRequest {
                    temperature: 0.8,
                    ..ServeRequest::new(10 * wave + id, prompt, 4)
                })
                .expect("no KV budget configured");
        }
        while !sched.is_idle() {
            sched.step();
            assert!(sched.active() <= 2);
        }
        assert_eq!(sched.take_finished().len(), 4, "wave {wave}");
    }
}

/// The live batch cache's byte counters agree with the serving-memory plan
/// of the packed model at every step of a run — logical (per-copy) bytes
/// against `kv_cache_bytes_used`, physical (allocated whole pages) against
/// `kv_cache_bytes_for`, and logical never exceeds physical without
/// sharing.
#[test]
fn batch_cache_bytes_track_the_serving_plan() {
    let (model, corpus) = fitted_tiny();
    let (mut sched, _) =
        serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 2);
    let plan = ServingMemory::from_model(sched.model(), 1e9);
    for id in 0..3u64 {
        let prompt = corpus.generate(5, 400 + id).tokens().to_vec();
        sched
            .submit(ServeRequest { temperature: 1.0, ..ServeRequest::new(id, prompt, 6) })
            .expect("no KV budget configured");
    }
    while !sched.is_idle() {
        sched.step();
        assert_eq!(
            sched.cache().fp16_bytes() as f64,
            plan.kv_cache_bytes_used(sched.cache()),
            "logical accounting diverged at step {}",
            sched.steps()
        );
        assert_eq!(
            sched.cache().allocated_fp16_bytes() as f64,
            plan.kv_cache_bytes_for(sched.cache()),
            "physical accounting diverged at step {}",
            sched.steps()
        );
        assert!(
            sched.cache().fp16_bytes() <= sched.cache().allocated_fp16_bytes(),
            "without sharing, used bytes cannot exceed allocated pages"
        );
    }
}

/// Dense and packed schedulers agree on scheduling behaviour (steps,
/// stepped tokens) for the same request load; only the logits-level
/// sampling may differ between backends.
#[test]
fn dense_and_packed_schedulers_step_identically() {
    let (model, corpus) = fitted_tiny();
    let mut dense = BatchScheduler::new(model.clone(), 2);
    let (mut packed, _) =
        serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 2);
    for id in 0..4u64 {
        let prompt = corpus.generate(4, 600 + id).tokens().to_vec();
        let req = ServeRequest { temperature: 0.9, ..ServeRequest::new(id, prompt, 5) };
        dense.submit(req.clone()).expect("no KV budget configured");
        packed.submit(req).expect("no KV budget configured");
    }
    let d = dense.run();
    let p = packed.run();
    assert_eq!(d.len(), p.len());
    assert_eq!(dense.steps(), packed.steps());
    assert_eq!(dense.stepped_tokens(), packed.stepped_tokens());
}

/// The batched step and the single-sequence step agree on the packed model
/// outside the scheduler too (direct engine-level check, fixed tokens).
#[test]
fn packed_forward_step_batch_is_bitwise_consistent_with_forward_step() {
    let (model, corpus) = fitted_tiny();
    let (sched, _) = serve_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default(), 2);
    let packed = sched.model();
    let cfg = packed.config();
    let tokens = corpus.generate(10, 700).tokens().to_vec();
    let mut solo = KvCache::new(cfg.n_layers, cfg.d_model);
    let mut batch = BatchKvCache::new(cfg.n_layers, cfg.d_model, 2);
    for (i, &tok) in tokens.iter().enumerate() {
        // The second slot decodes a shifted copy of the stream so the batch
        // is genuinely heterogeneous.
        let other = tokens[(i + 3) % tokens.len()];
        let batched = packed.forward_step_batch(&[tok, other], &[0, 1], &mut batch);
        let reference = packed.forward_step(tok, &mut solo);
        assert_eq!(batched.row(0), &reference[..], "position {i}");
    }
}
