//! Multi-process sharded serving suite — the distributed-gate oracle.
//!
//! Every test here boots **real `fineq-worker` subprocesses** (Unix
//! sockets in a tempdir) and asserts the distributed token stream is
//! `assert_eq!`-identical to the in-process unsharded [`BatchScheduler`]
//! run with the same seeds — including a run where one worker is
//! SIGKILLed mid-run with replicas enabled (the failover oracle). The
//! `distributed-gate` CI job runs these tests on every push; the gate
//! test additionally pins the output hash to the committed
//! `BENCH_packed.json` value, tying the multi-process path to the same
//! determinism contract the bench enforces in-process.

use fineq::core::frame::{read_frame, write_frame, FrameError, Stream};
use fineq::core::FineQuantizer;
use fineq::lm::builder::{llm_like_matrix, BuilderSpec};
use fineq::lm::{
    BatchScheduler, DistributedScheduler, FinishedSequence, ModelConfig, RemoteShardedModel,
    ServeRequest, Transformer, TransportConfig, WeightSite, WorkerEvent,
};
use fineq::tensor::{Matrix, Rng};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A worker subprocess bound to a Unix socket, killed on drop so a failed
/// assertion never leaks processes.
struct WorkerProc {
    child: Child,
    addr: String,
}

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

impl WorkerProc {
    /// Spawns `fineq-worker` on a fresh tempdir socket and waits until the
    /// socket is accepting.
    fn spawn() -> Self {
        let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
        let path: PathBuf =
            std::env::temp_dir().join(format!("fineq-w-{}-{n}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let child = Command::new(env!("CARGO_BIN_EXE_fineq-worker"))
            .arg(&addr)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fineq-worker");
        let deadline = Instant::now() + Duration::from_secs(20);
        while !path.exists() {
            assert!(Instant::now() < deadline, "worker never bound {addr}");
            std::thread::sleep(Duration::from_millis(5));
        }
        Self { child, addr }
    }

    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL worker");
        self.child.wait().expect("reap worker");
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_workers(n: usize) -> Vec<WorkerProc> {
    (0..n).map(|_| WorkerProc::spawn()).collect()
}

/// One replica per shard: `workers[i]` serves shard `i` alone.
fn solo_groups(workers: &[WorkerProc]) -> Vec<Vec<String>> {
    workers.iter().map(|w| vec![w.addr.clone()]).collect()
}

/// A fully packed random model (same construction as the sharded suite).
fn packed_model(d_ff: usize, seed: u64) -> Transformer {
    let cfg = ModelConfig::new(24, 8, 2, 2, d_ff);
    let mut m = Transformer::zeros(cfg.clone());
    let mut rng = Rng::seed_from(seed);
    *m.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    *m.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    let q = FineQuantizer::paper();
    for l in 0..m.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = m.weight(l, site);
                (w.rows(), w.cols())
            };
            let dense = Matrix::from_fn(r, c, |_, _| {
                let v = rng.laplace(0.0, 0.04);
                if rng.chance(0.04) {
                    v * 10.0
                } else {
                    v
                }
            });
            *m.weight_mut(l, site) = q.quantize_packed(&dense).into();
        }
    }
    m
}

/// The exact packed model `crates/bench/benches/packed_batch.rs` builds —
/// same config, seed and draw order — so output hashes are comparable to
/// the committed `BENCH_packed.json`.
fn bench_packed_model() -> Transformer {
    let cfg = ModelConfig::new(64, 256, 2, 4, 512);
    let spec = BuilderSpec::tiny();
    let mut rng = Rng::seed_from(41);
    let mut dense = Transformer::zeros(cfg.clone());
    *dense.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.3));
    *dense.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.3));
    for l in 0..dense.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = dense.weight(l, site);
                (w.rows(), w.cols())
            };
            *dense.weight_mut(l, site) = llm_like_matrix(r, c, &spec, &mut rng).into();
        }
    }
    let q = FineQuantizer::paper();
    let mut packed = dense.clone();
    for l in 0..dense.n_layers() {
        for site in WeightSite::ALL {
            let p = q.quantize_packed(dense.weight(l, site).dense());
            *packed.weight_mut(l, site) = p.into();
        }
    }
    packed
}

/// The bench's seeded serving workload (temperature sampling, eos
/// retirement, backfill through 4 slots).
fn submit_gate_workload(vocab: usize, mut submit: impl FnMut(ServeRequest)) {
    for id in 0..6u64 {
        let prompt: Vec<usize> =
            (0..3 + id as usize % 3).map(|i| (id as usize * 11 + i * 5) % vocab).collect();
        submit(ServeRequest {
            temperature: 0.9,
            seed: 700 + id,
            eos: Some(0),
            ..ServeRequest::new(id, prompt, 6 + id as usize % 3)
        });
    }
}

/// The bench's output digest: FNV-1a over sorted finished sequences.
fn finished_hash(mut done: Vec<FinishedSequence>) -> u64 {
    done.sort_by_key(|f| f.id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for f in &done {
        eat(f.id);
        eat(f.prompt_len as u64);
        for &t in &f.generated {
            eat(t as u64);
        }
    }
    h
}

/// The `"sharded_output_hash"` value committed in `BENCH_packed.json`.
fn committed_bench_hash() -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_packed.json");
    let json = std::fs::read_to_string(path).expect("read committed BENCH_packed.json");
    let key = "\"sharded_output_hash\": \"";
    let start = json.find(key).expect("committed bench carries the hash") + key.len();
    let hex = &json[start..start + 16];
    u64::from_str_radix(hex, 16).expect("16 hex digits")
}

/// The distributed token stream equals the in-process unsharded
/// `BatchScheduler` run exactly — real subprocesses, 2 and 3 workers.
#[test]
fn multi_process_stream_matches_in_process() {
    let model = packed_model(16, 3);
    let vocab = model.config().vocab;
    let reference = {
        let mut sched = BatchScheduler::new(model.clone(), 4);
        submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        sched.run()
    };
    for n_workers in [2usize, 3] {
        let workers = spawn_workers(n_workers);
        let remote = RemoteShardedModel::connect(&model, &solo_groups(&workers))
            .expect("connect coordinator");
        let mut sched = DistributedScheduler::new(remote, 4);
        assert_eq!(sched.n_shards(), n_workers);
        submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        let done = sched.run();
        assert_eq!(done, reference, "{n_workers} worker processes");
        assert!(sched.model().take_events().is_empty(), "healthy run records no events");
        sched.model().shutdown_workers();
    }
}

/// SIGKILL one worker mid-run with replicas enabled: the token stream is
/// still byte-identical, and the death + failover are reported as typed
/// events. The transport runs at pipeline depth 3 (set explicitly here,
/// also the default), so the kill lands with **multiple nonce-tagged
/// gathers in flight** on the dying connection — failover must replay
/// the entire unreceived window on the spare under the original nonces.
/// This is the failover oracle the `distributed-gate` CI job enforces on
/// every host.
#[test]
fn sigkilled_worker_is_output_invisible_with_replicas() {
    let model = packed_model(16, 4);
    let vocab = model.config().vocab;
    let reference = {
        let mut sched = BatchScheduler::new(model.clone(), 4);
        submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        sched.run()
    };
    // 2 shards x 2 replicas.
    let mut workers = spawn_workers(4);
    let groups = vec![
        vec![workers[0].addr.clone(), workers[1].addr.clone()],
        vec![workers[2].addr.clone(), workers[3].addr.clone()],
    ];
    let tc = TransportConfig { pipeline_depth: 3, ..TransportConfig::default() };
    let remote =
        RemoteShardedModel::connect_with(&model, &groups, tc).expect("connect coordinator");
    let mut sched = DistributedScheduler::new(remote, 4);
    submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
    // Let the run get under way, then kill shard 0's primary replica.
    for _ in 0..2 {
        sched.step();
    }
    workers[0].sigkill();
    let mut done = sched.take_finished();
    done.extend(sched.run());
    done.sort_by_key(|f| f.id);
    let mut expect = reference.clone();
    expect.sort_by_key(|f| f.id);
    assert_eq!(done, expect, "a SIGKILLed replica must be output-invisible");
    let events = sched.model().take_events();
    assert!(
        events.iter().any(|e| matches!(e, WorkerEvent::WorkerDied { shard: 0, replica: 0, .. })),
        "the kill must surface as a typed event: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(e, WorkerEvent::FailedOver { shard: 0, to_replica: 1, .. })),
        "failover must surface as a typed event: {events:?}"
    );
    let health = sched.model().heartbeat();
    assert_eq!(health.live_per_shard, vec![1, 2]);
    assert!(health.serviceable());
    sched.model().shutdown_workers();
}

/// The distributed-gate hash check: the bench workload through 3 worker
/// subprocesses produces the exact output hash of the in-process run —
/// which is also the `sharded_output_hash` committed in
/// `BENCH_packed.json`.
#[test]
fn distributed_gate_hash_matches_committed_bench() {
    let packed = bench_packed_model();
    let vocab = packed.config().vocab;
    let in_process = {
        let mut sched = BatchScheduler::new(packed.clone(), 4);
        submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        finished_hash(sched.run())
    };
    assert_eq!(
        in_process,
        committed_bench_hash(),
        "in-process hash must match the committed BENCH_packed.json"
    );
    let workers = spawn_workers(3);
    let remote =
        RemoteShardedModel::connect(&packed, &solo_groups(&workers)).expect("connect coordinator");
    let mut sched = DistributedScheduler::new(remote, 4);
    submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
    let distributed = finished_hash(sched.run());
    assert_eq!(
        format!("{distributed:016x}"),
        format!("{in_process:016x}"),
        "3 worker processes must reproduce the committed gate hash"
    );
    sched.model().shutdown_workers();
}

/// The overlap gate: the same bench workload at pipeline depth 1
/// (serial request/reply per site) and at a deep window must produce the
/// **identical output hash** — and it must be the committed
/// `BENCH_packed.json` hash, tying pipelining to the same determinism
/// contract as sharding itself. Scheduling must never touch arithmetic.
#[test]
fn pipeline_depth_overlap_gate_hashes_are_identical() {
    let packed = bench_packed_model();
    let vocab = packed.config().vocab;
    let committed = committed_bench_hash();
    for depth in [1usize, 3, 8] {
        let workers = spawn_workers(2);
        let tc = TransportConfig { pipeline_depth: depth, ..TransportConfig::default() };
        let remote = RemoteShardedModel::connect_with(&packed, &solo_groups(&workers), tc)
            .expect("connect coordinator");
        let mut sched = DistributedScheduler::new(remote, 4);
        submit_gate_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        let hash = finished_hash(sched.run());
        assert_eq!(
            format!("{hash:016x}"),
            format!("{committed:016x}"),
            "pipeline depth {depth} must reproduce the committed gate hash"
        );
        sched.model().shutdown_workers();
    }
}

/// Transport abuse against a live worker process: corrupt bytes drop the
/// connection (no hang, no resync) but the worker survives for the next
/// connection; well-framed garbage gets a typed `ERROR` reply on a
/// connection that keeps serving; `SHUTDOWN` exits the process cleanly.
#[test]
fn worker_survives_corrupt_frames_and_rejects_garbage() {
    const KIND_PING: u8 = 5;
    const KIND_PONG: u8 = 6;
    const KIND_SHUTDOWN: u8 = 7;
    const KIND_ERROR: u8 = 0xEE;
    let mut workers = spawn_workers(1);
    // Corruption: garbage that cannot be a frame. The worker must drop
    // the connection — observed as EOF here — not hang or answer.
    {
        let mut conn = Stream::connect(&workers[0].addr).expect("connect");
        use std::io::Write as _;
        conn.write_all(b"these bytes are not a frame, not even close").expect("write garbage");
        conn.flush().expect("flush");
        match read_frame(&mut conn) {
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => {}
            other => panic!("worker must drop a corrupted connection, got {other:?}"),
        }
    }
    // The worker survives: a fresh connection serves.
    let mut conn = Stream::connect(&workers[0].addr).expect("reconnect");
    write_frame(&mut conn, KIND_PING, b"alive?").expect("ping");
    let (kind, payload) = read_frame(&mut conn).expect("pong");
    assert_eq!((kind, payload.as_slice()), (KIND_PONG, b"alive?".as_slice()));
    // Well-framed garbage: typed ERROR reply, connection keeps serving.
    write_frame(&mut conn, 0x42, b"junk").expect("unknown kind");
    let (kind, msg) = read_frame(&mut conn).expect("error reply");
    assert_eq!(kind, KIND_ERROR);
    assert!(String::from_utf8_lossy(&msg).contains("unknown frame kind"));
    write_frame(&mut conn, KIND_PING, b"still here?").expect("ping again");
    let (kind, _) = read_frame(&mut conn).expect("pong again");
    assert_eq!(kind, KIND_PONG);
    // Clean shutdown: the process exits with success and removes its
    // socket file so a restart can rebind the same path.
    write_frame(&mut conn, KIND_SHUTDOWN, &[]).expect("shutdown");
    let status = workers[0].child.wait().expect("worker exit");
    assert!(status.success(), "worker must exit cleanly on SHUTDOWN: {status:?}");
    let path = workers[0].addr.strip_prefix("unix:").expect("unix worker");
    assert!(
        !std::path::Path::new(path).exists(),
        "clean SHUTDOWN must remove the Unix socket file {path}"
    );
}

/// `serve_distributed` — the one-call pipeline entry — quantizes, ships
/// shards and matches `serve_packed` exactly.
#[test]
fn serve_distributed_matches_serve_packed() {
    use fineq::pipeline::{serve_distributed, serve_packed_with_threads, PipelineConfig};
    let corpus = fineq::lm::Corpus::wiki_like(64, 77);
    let (model, _) = fineq::lm::build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 5);
    let cfg = PipelineConfig::default();
    let q = FineQuantizer::paper();
    let submit = |sub: &mut dyn FnMut(ServeRequest)| {
        for id in 0..3u64 {
            let prompt = corpus.generate(4, 300 + id).tokens().to_vec();
            sub(ServeRequest {
                temperature: 0.8,
                seed: 60 + id,
                ..ServeRequest::new(id, prompt, 5)
            });
        }
    };
    let (mut plain, _) = serve_packed_with_threads(&model, &q, &cfg, 2, 1);
    submit(&mut |r| plain.submit(r).expect("no KV budget"));
    let reference = plain.run();
    let workers = spawn_workers(2);
    let (mut sched, report) =
        serve_distributed(&model, &q, &cfg, 2, &solo_groups(&workers)).expect("serve_distributed");
    assert_eq!(sched.n_shards(), 2);
    assert_eq!(report.sites.len(), model.n_layers() * 6);
    submit(&mut |r| sched.submit(r).expect("no KV budget"));
    assert_eq!(sched.run(), reference);
    sched.model().shutdown_workers();
}
