//! Paged-KV determinism suite: page budgets, preemption and copy-on-write
//! prefix sharing are **execution configuration**, never semantics. A
//! scheduler squeezed through a tight page pool — evicting and resuming
//! sequences, COW-splitting shared pages — must produce output
//! token-identical (`assert_eq!`) to an unpressured run, at every tested
//! thread count × shard count, because every per-slot step is bit-identical
//! arithmetic over the same token history regardless of where the K/V rows
//! physically live.

use fineq::core::{FineQuantizer, ThreadPool};
use fineq::lm::{
    BatchScheduler, FinishedSequence, ModelConfig, Scheduler, ServeRequest, ShardedModel,
    Transformer, WeightSite,
};
use fineq::tensor::{Matrix, Rng};
use std::sync::Arc;

/// A fully packed random model (same construction as the sharded suite).
fn packed_model(seed: u64) -> Transformer {
    let cfg = ModelConfig::new(24, 8, 2, 2, 16);
    let mut m = Transformer::zeros(cfg.clone());
    let mut rng = Rng::seed_from(seed);
    *m.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    *m.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    let q = FineQuantizer::paper();
    for l in 0..m.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = m.weight(l, site);
                (w.rows(), w.cols())
            };
            let dense = Matrix::from_fn(r, c, |_, _| {
                let v = rng.laplace(0.0, 0.04);
                if rng.chance(0.04) {
                    v * 10.0
                } else {
                    v
                }
            });
            *m.weight_mut(l, site) = q.quantize_packed(&dense).into();
        }
    }
    m
}

/// The workload: eight requests, several sharing a common prompt prefix so
/// sharing and COW engage, with varied budgets and seeds.
fn requests() -> Vec<ServeRequest> {
    let base = [1usize, 2, 3, 4];
    (0..8u64)
        .map(|id| {
            let mut prompt = base.to_vec();
            if id % 2 == 0 {
                prompt.push(5 + id as usize % 3);
            } else {
                prompt = vec![7 + id as usize % 5, 8, 9 + id as usize % 4];
            }
            ServeRequest {
                temperature: 0.8,
                seed: 40 + id,
                eos: Some(0),
                ..ServeRequest::new(id, prompt, 4 + id as usize % 4)
            }
        })
        .collect()
}

fn run_sorted<M: fineq::lm::ServeModel>(sched: &mut Scheduler<M>) -> Vec<FinishedSequence> {
    for req in requests() {
        sched.submit(req).expect("request fits every tested budget");
    }
    let mut done = sched.run();
    done.sort_by_key(|f| f.id);
    done
}

/// The full matrix: page budgets {none, 14, 8 pages of 2 tokens} ×
/// threads {1, 2, 4} × shards {1, 2, 3}, prefix sharing on wherever a
/// budget is set. The worst-case request is 9 prompt+new tokens = 5 pages,
/// so the 8-page pool forces constant eviction with 3 slots; outputs must
/// not move by a single token.
#[test]
fn preempted_runs_are_token_identical_across_threads_and_shards() {
    let model = packed_model(7);
    let reference = {
        let mut sched = BatchScheduler::with_page_tokens(model.clone(), 3, 2);
        run_sorted(&mut sched)
    };
    assert_eq!(reference.len(), 8, "every request completes unpressured");

    for budget in [None, Some(14usize), Some(8)] {
        for threads in [1usize, 2, 4] {
            let pool = (threads > 1).then(|| Arc::new(ThreadPool::new(threads)));
            // Unsharded at this thread count.
            let mut plain = model.clone();
            plain.set_thread_pool(pool.clone());
            let mut sched = BatchScheduler::with_page_tokens(plain, 3, 2);
            if let Some(pages) = budget {
                sched.set_page_budget(pages).expect("nothing queued yet");
                sched.enable_prefix_sharing(true);
            }
            let done = run_sorted(&mut sched);
            assert_eq!(done, reference, "unsharded, budget {budget:?}, {threads} threads");
            if budget == Some(8) {
                assert!(
                    sched.preemptions() > 0,
                    "the tight pool must actually preempt ({threads} threads)"
                );
            }

            // Row-sharded at this thread count × every shard count.
            for n_shards in [1usize, 2, 3] {
                let mut sharded = ShardedModel::new(&model, n_shards);
                sharded.set_thread_pool(pool.clone());
                let mut sched = Scheduler::with_page_tokens(sharded, 3, 2);
                if let Some(pages) = budget {
                    sched.set_page_budget(pages).expect("nothing queued yet");
                    sched.enable_prefix_sharing(true);
                }
                let done = run_sorted(&mut sched);
                assert_eq!(
                    done, reference,
                    "{n_shards} shards, budget {budget:?}, {threads} threads"
                );
                if budget == Some(8) {
                    assert!(
                        sched.preemptions() > 0,
                        "the tight pool must preempt ({n_shards} shards, {threads} threads)"
                    );
                }
            }
        }
    }
}

/// Shrinking the pool monotonically increases preemptions but never
/// changes a token, and the pool invariants hold at every step: allocated
/// pages within budget, free + allocated tiling it exactly.
#[test]
fn shrinking_page_budgets_trade_preemptions_not_tokens() {
    let model = packed_model(11);
    let reference = {
        let mut sched = BatchScheduler::with_page_tokens(model.clone(), 3, 2);
        run_sorted(&mut sched)
    };
    let mut last_preemptions = 0u64;
    for pages in [20usize, 10, 6] {
        let mut sched = BatchScheduler::with_page_tokens(model.clone(), 3, 2);
        sched.set_page_budget(pages).expect("nothing queued yet");
        for req in requests() {
            sched.submit(req).expect("worst case fits the pool");
        }
        while !sched.is_idle() {
            sched.step();
            let s = sched.stats();
            assert!(s.allocated_pages <= pages, "pool overflow at {pages} pages");
            assert_eq!(s.free_pages, Some(pages - s.allocated_pages));
        }
        let mut done = sched.take_finished();
        done.sort_by_key(|f| f.id);
        assert_eq!(done, reference, "{pages}-page pool");
        assert!(
            sched.preemptions() >= last_preemptions,
            "tighter pools cannot preempt less ({pages} pages)"
        );
        last_preemptions = sched.preemptions();
        let events = sched.take_preemption_events();
        assert_eq!(events.len() as u64, sched.preemptions());
    }
    assert!(last_preemptions > 0, "the tightest pool must exercise preemption");
}
