//! Seeded chaos harness — the robustness oracle for distributed serving.
//!
//! Every scenario here boots real `fineq-worker` subprocesses (Unix
//! sockets, per-connection idle deadlines) and interposes a
//! [`FaultProxy`](fineq::core::FaultProxy) scripted by a deterministic
//! [`FaultPlan`] between the coordinator and one replica. The contract
//! under test, per ISSUE 8:
//!
//! * **Output-invisible recovery** — for every transient fault script
//!   (cut, corrupt, blackhole, delay, seeded mixtures) and every swept
//!   topology, the served token stream is `assert_eq!`-identical to the
//!   in-process [`BatchScheduler`] as long as at least one replica per
//!   shard survives. Failover, retry and rejoin must never leak into
//!   output.
//! * **Typed degradation** — when a whole replica group dies for good,
//!   affected requests fail with [`StepError::NoLiveReplica`] (never a
//!   hang, never a panic: every scenario runs under a watchdog), the
//!   scheduler stays steppable, and the failure is visible in
//!   `SchedulerStats::transport`.
//! * **Healing** — a partition that heals lets later requests serve
//!   bit-identically again, recorded as a rejoin.
//!
//! The `chaos-gate` CI job runs this suite on every push.

use fineq::core::frame::Stream;
use fineq::core::{FaultAction, FaultPlan, FaultProxy, FaultScript, FineQuantizer, RetryPolicy};
use fineq::lm::{
    BatchScheduler, DistributedScheduler, FinishedSequence, ModelConfig, RemoteShardedModel,
    ServeRequest, StepError, Transformer, TransportConfig, WeightSite,
};
use fineq::tensor::{Matrix, Rng};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Fault budget (bytes passed before the fault fires) for the fixed
/// scripts: comfortably past the LOAD envelopes of the tiny test model
/// (a few KiB) and comfortably inside each scenario's total gather
/// traffic (tens of KiB), so the fault deterministically lands
/// mid-serving.
const FAULT_AFTER: usize = 25_000;

/// A `fineq-worker` subprocess on a Unix socket, optionally fronted by a
/// scripted fault proxy. Killed on drop so failed assertions never leak
/// processes.
struct ChaosWorker {
    child: Child,
    /// The worker's own address (`unix:/path`).
    addr: String,
    /// The scripted proxy, when this replica is the faulted one.
    proxy: Option<FaultProxy>,
}

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

impl ChaosWorker {
    fn spawn(plan: Option<FaultPlan>) -> Self {
        let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
        let path: PathBuf =
            std::env::temp_dir().join(format!("fineq-chaos-{}-{n}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        // A 1s idle deadline: a blackholed or half-dead coordinator
        // connection frees the worker for the next accept instead of
        // wedging it (workers serve one connection at a time).
        let child = Command::new(env!("CARGO_BIN_EXE_fineq-worker"))
            .arg(&addr)
            .arg("1000")
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fineq-worker");
        let deadline = Instant::now() + Duration::from_secs(20);
        while !path.exists() {
            assert!(Instant::now() < deadline, "worker never bound {addr}");
            std::thread::sleep(Duration::from_millis(5));
        }
        let proxy = plan.map(|p| FaultProxy::spawn(&addr, p).expect("spawn fault proxy"));
        Self { child, addr, proxy }
    }

    /// The address the coordinator should dial: the proxy when faulted,
    /// the worker directly otherwise.
    fn dial_addr(&self) -> String {
        match &self.proxy {
            Some(p) => p.addr().to_string(),
            None => self.addr.clone(),
        }
    }
}

impl Drop for ChaosWorker {
    fn drop(&mut self) {
        if let Some(p) = &self.proxy {
            p.stop();
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(path) = self.addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Runs `f` on its own thread and panics if it does not finish within
/// `limit` — the no-hang guarantee every chaos scenario is held to.
fn with_watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            handle.join().expect("scenario thread");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(_) => unreachable!("sender dropped without sending"),
            Err(panic) => std::panic::resume_unwind(panic),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos scenario `{name}` exceeded its {limit:?} watchdog (hang)")
        }
    }
}

/// A fully packed random model, same construction as the distributed
/// suite's — small enough that a full chaos sweep stays fast.
fn packed_model(seed: u64) -> Transformer {
    let cfg = ModelConfig::new(24, 8, 2, 2, 16);
    let mut m = Transformer::zeros(cfg.clone());
    let mut rng = Rng::seed_from(seed);
    *m.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    *m.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    let q = FineQuantizer::paper();
    for l in 0..m.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = m.weight(l, site);
                (w.rows(), w.cols())
            };
            let dense = Matrix::from_fn(r, c, |_, _| {
                let v = rng.laplace(0.0, 0.04);
                if rng.chance(0.04) {
                    v * 10.0
                } else {
                    v
                }
            });
            *m.weight_mut(l, site) = q.quantize_packed(&dense).into();
        }
    }
    m
}

/// Six seeded requests with eos retirement and backfill through 4 slots.
fn chaos_workload(vocab: usize, mut submit: impl FnMut(ServeRequest)) {
    for id in 0..6u64 {
        let prompt: Vec<usize> =
            (0..3 + id as usize % 3).map(|i| (id as usize * 7 + i * 3 + 1) % vocab).collect();
        submit(ServeRequest {
            temperature: 0.9,
            seed: 500 + id,
            eos: Some(0),
            ..ServeRequest::new(id, prompt, 6 + id as usize % 3)
        });
    }
}

/// Tight deadlines and fast, seeded backoff so fault detection and
/// recovery fit a test budget; the jitter seed keeps retry schedules
/// reproducible run to run.
fn chaos_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_secs(2),
        load_timeout: Duration::from_secs(10),
        gather_timeout: Duration::from_millis(500),
        heartbeat_timeout: Duration::from_millis(300),
        retry: RetryPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(120),
            max_attempts: 3,
            jitter_seed: 0xC4A0_5EED,
        },
        ..TransportConfig::default()
    }
}

/// `FaultScript::seeded` behind a pass guard large enough to protect the
/// setup handshake, so seeded faults land in gather traffic (or, for
/// some seeds, never — a valid calm scenario).
fn guarded_seeded(seed: u64) -> FaultScript {
    let mut script = FaultScript::seeded(seed);
    script.actions.insert(0, FaultAction::Pass(FAULT_AFTER));
    script
}

/// Boots `shards x replicas` workers with `plan` fronting shard 0's
/// replica 0, serves the standard workload, and asserts the stream
/// equals `reference` bit for bit.
fn run_transient_scenario(
    name: &str,
    model: &Transformer,
    reference: &[FinishedSequence],
    plan: FaultPlan,
    shards: usize,
    replicas: usize,
    expect_death: bool,
) {
    let vocab = model.config().vocab;
    let mut workers: Vec<ChaosWorker> = Vec::new();
    let mut groups: Vec<Vec<String>> = Vec::new();
    for s in 0..shards {
        let mut addrs = Vec::new();
        for r in 0..replicas {
            let w = ChaosWorker::spawn((s == 0 && r == 0).then(|| plan.clone()));
            addrs.push(w.dial_addr());
            workers.push(w);
        }
        groups.push(addrs);
    }
    let remote = RemoteShardedModel::connect_with(model, &groups, chaos_transport())
        .expect("connect through the fault proxy");
    let mut sched = DistributedScheduler::new(remote, 4);
    chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
    let done = sched.run();
    assert_eq!(done, reference, "{name}: transient faults must be output-invisible");
    assert_eq!(sched.take_failed(), vec![], "{name}: no request may fail");
    let stats = sched.stats();
    let th = stats.transport.expect("distributed scheduler must expose transport health");
    assert!(th.deadline_ms > 0, "{name}: gather deadline must be armed: {th:?}");
    if expect_death {
        assert!(th.deaths >= 1, "{name}: the fault must have been detected as a death: {th:?}");
        let proxy = workers[0].proxy.as_ref().expect("faulted replica has a proxy");
        assert!(proxy.accepted() >= 2, "{name}: recovery must have reconnected through the proxy");
    }
    sched.model().shutdown_workers();
}

/// The transient-fault sweep: every fault script x every topology, all
/// bit-identical to in-process serving. Fault scripts front the *first*
/// connection only (reconnects are clean), so with replicas the failover
/// masks the fault and without them blocking recovery replays it — both
/// must be invisible.
#[test]
fn transient_faults_are_output_invisible_across_topologies() {
    let model = packed_model(5);
    let vocab = model.config().vocab;
    let reference = {
        let mut sched = BatchScheduler::new(model.clone(), 4);
        chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        let done = sched.run();
        let stats = sched.stats();
        assert!(stats.transport.is_none(), "in-process engines have no transport");
        assert_eq!(stats.failed, 0);
        done
    };
    // (name, script, does it sever the connection — i.e. must a death +
    // reconnect be observable?)
    let scripts: Vec<(&str, FaultScript, bool)> = vec![
        ("cut", FaultScript::cut_after(FAULT_AFTER), true),
        ("corrupt", FaultScript::corrupt_after(FAULT_AFTER), true),
        ("blackhole", FaultScript::blackhole_after(FAULT_AFTER), true),
        ("delay", FaultScript::delay_after(10_000, Duration::from_millis(40)), false),
        ("seeded-1", guarded_seeded(1), false),
        ("seeded-2", guarded_seeded(2), false),
    ];
    for (script_name, script, expect_death) in scripts {
        for &(shards, replicas) in &[(1usize, 1usize), (2usize, 2usize)] {
            let name = format!("{script_name}/{shards}shard-{replicas}rep");
            let label = name.clone();
            let model = model.clone();
            let reference = reference.clone();
            let plan = FaultPlan::first_connection(script.clone());
            with_watchdog(&label, Duration::from_secs(90), move || {
                run_transient_scenario(
                    &name,
                    &model,
                    &reference,
                    plan,
                    shards,
                    replicas,
                    expect_death,
                );
            });
        }
    }
}

/// Whole-group death: the lone replica's connection is cut and every
/// reconnect refused forever. Affected requests must fail with the typed
/// [`StepError::NoLiveReplica`] — never a hang (watchdog), never a panic
/// — the scheduler must stay steppable to idle, and the exhaustion must
/// be visible in `SchedulerStats::transport`.
#[test]
fn whole_group_death_fails_requests_typed_and_never_hangs() {
    with_watchdog("whole-group-death", Duration::from_secs(120), || {
        let model = packed_model(6);
        let vocab = model.config().vocab;
        let plan = FaultPlan { connections: vec![Some(FaultScript::cut_after(FAULT_AFTER)), None] };
        let worker = ChaosWorker::spawn(Some(plan));
        let remote = RemoteShardedModel::connect_with(
            &model,
            &[vec![worker.dial_addr()]],
            chaos_transport(),
        )
        .expect("connect through the fault proxy");
        let mut sched = DistributedScheduler::new(remote, 4);
        chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        // Drive to idle through the permanent outage: requests in flight
        // at the cut die typed, later admissions fail fast after bounded
        // blocking recovery, and the loop terminates.
        while !sched.is_idle() {
            sched.step();
        }
        let finished = sched.take_finished();
        let failed = sched.take_failed();
        assert!(!failed.is_empty(), "the cut must kill at least one request");
        assert_eq!(finished.len() + failed.len(), 6, "every request must be accounted for");
        for f in &failed {
            assert_eq!(
                f.error,
                StepError::NoLiveReplica { shard: 0 },
                "group exhaustion must surface as the typed per-request error"
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.failed, 0, "take_failed drained the ledger");
        let th = stats.transport.expect("transport health");
        assert_eq!(th.live_replicas, 0, "{th:?}");
        assert_eq!(th.dead_replicas, 1, "{th:?}");
        assert!(th.deaths >= 1 && th.retry_attempts >= 1, "{th:?}");
        let proxy = worker.proxy.as_ref().expect("proxy");
        assert!(proxy.accepted() >= 2, "reconnects must have been attempted and refused");
        // Still steppable after total loss: an idle step is a no-op, and
        // new submissions are accepted (they would serve if capacity
        // returned).
        assert_eq!(sched.step(), 0);
        sched
            .submit(ServeRequest {
                temperature: 0.9,
                seed: 777,
                ..ServeRequest::new(99, vec![1, 2], 2)
            })
            .expect("the scheduler keeps accepting work after degradation");
    });
}

/// Partition-then-heal: the lone replica is cut, a handful of reconnects
/// are refused, then the network heals. Requests failed during the
/// partition carry the typed error; once healed, a fresh request serves
/// **bit-identically** to the in-process engine and the recovery is
/// recorded as a rejoin.
#[test]
fn healed_partition_serves_bit_identically_again() {
    with_watchdog("partition-then-heal", Duration::from_secs(120), || {
        let model = packed_model(7);
        let probe = |id: u64| ServeRequest {
            temperature: 0.9,
            seed: 321,
            ..ServeRequest::new(id, vec![1, 2, 3], 5)
        };
        let expect = {
            let mut sched = BatchScheduler::new(model.clone(), 2);
            sched.submit(probe(0)).expect("no KV budget");
            sched.run()
        };
        let worker = ChaosWorker::spawn(Some(FaultPlan::partition_then_heal(FAULT_AFTER, 8)));
        let remote = RemoteShardedModel::connect_with(
            &model,
            &[vec![worker.dial_addr()]],
            chaos_transport(),
        )
        .expect("connect through the fault proxy");
        let mut sched = DistributedScheduler::new(remote, 2);
        // Probe rounds: identical requests, one per round. Early rounds
        // serve fine (the cut lands mid-traffic), partition rounds fail
        // typed, and the first post-heal round must finish.
        let mut saw_failure = false;
        let mut healed: Option<FinishedSequence> = None;
        for round in 1..=60u64 {
            sched.submit(probe(round)).expect("no KV budget");
            while !sched.is_idle() {
                sched.step();
            }
            let finished = sched.take_finished();
            let failed = sched.take_failed();
            for f in &failed {
                assert_eq!(f.error, StepError::NoLiveReplica { shard: 0 }, "typed failure");
            }
            saw_failure |= !failed.is_empty();
            if saw_failure {
                if let Some(f) = finished.into_iter().next() {
                    healed = Some(f);
                    break;
                }
            }
        }
        let healed = healed.expect("the partition must heal within the refused budget");
        assert_eq!(
            healed.generated, expect[0].generated,
            "post-heal serving must be bit-identical to in-process"
        );
        let th = sched.stats().transport.expect("transport health");
        assert!(th.deaths >= 1, "{th:?}");
        assert!(th.rejoins >= 1, "healing must be recorded as a rejoin: {th:?}");
        sched.model().shutdown_workers();
    });
}

/// The fault plan itself is deterministic: two proxies running the same
/// seeded script against the same worker traffic inject at the same byte
/// offsets — `accepted()` connection counts agree run over run. (Output
/// identity across the sweep is asserted by the transient test; this
/// pins the *harness*'s own reproducibility.)
#[test]
fn seeded_fault_scripts_reproduce() {
    for seed in [3u64, 4, 5] {
        assert_eq!(FaultScript::seeded(seed), FaultScript::seeded(seed), "same seed, same script");
    }
    assert_ne!(
        FaultScript::seeded(3),
        FaultScript::seeded(4),
        "different seeds explore different fault schedules"
    );
    // And a scripted proxy is reachable like any worker: a plain
    // passthrough proxy in front of a worker serves a clean connection.
    let worker = ChaosWorker::spawn(Some(FaultPlan::passthrough()));
    let mut conn = Stream::connect(worker.dial_addr().as_str()).expect("connect via proxy");
    const KIND_PING: u8 = 5;
    const KIND_PONG: u8 = 6;
    fineq::core::frame::write_frame(&mut conn, KIND_PING, b"through the proxy").expect("ping");
    let (kind, payload) = fineq::core::frame::read_frame(&mut conn).expect("pong");
    assert_eq!((kind, payload.as_slice()), (KIND_PONG, b"through the proxy".as_slice()));
}

/// Telemetry determinism: the same seeded fault scenario, run twice
/// against fresh worker fleets with fresh registries, produces the exact
/// same robustness counters — deaths, failovers, rejoins, retry
/// attempts, timeouts — and the registry's mirrored counters never drift
/// from [`TransportHealth`]'s. Fault scripts are byte-deterministic and
/// retry/rejoin scheduling is tick-based, so observability inherits the
/// transport's reproducibility.
#[test]
fn telemetry_counters_reproduce_by_seed() {
    use fineq::core::MetricsRegistry;
    use std::sync::Arc;

    fn run_once(model: &Transformer) -> (Vec<FinishedSequence>, [u64; 5]) {
        let vocab = model.config().vocab;
        let mut workers: Vec<ChaosWorker> = Vec::new();
        let mut addrs: Vec<String> = Vec::new();
        for r in 0..2 {
            let plan =
                (r == 0).then(|| FaultPlan::first_connection(FaultScript::cut_after(FAULT_AFTER)));
            let w = ChaosWorker::spawn(plan);
            addrs.push(w.dial_addr());
            workers.push(w);
        }
        let remote = RemoteShardedModel::connect_with(model, &[addrs], chaos_transport())
            .expect("connect through the fault proxy");
        let mut sched = DistributedScheduler::new(remote, 4);
        let registry = Arc::new(MetricsRegistry::new());
        sched.set_telemetry(Arc::clone(&registry));
        chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        let done = sched.run();
        assert_eq!(sched.take_failed(), vec![], "the spare must mask the cut");
        let th = sched.stats().transport.expect("transport health");
        for (counter, want) in [
            ("fineq_transport_deaths_total", th.deaths),
            ("fineq_transport_failovers_total", th.failovers),
            ("fineq_transport_rejoins_total", th.rejoins),
            ("fineq_transport_retry_attempts_total", th.retry_attempts),
            ("fineq_transport_timeouts_total", th.timeouts),
        ] {
            assert_eq!(
                registry.counter(counter).get(),
                want,
                "{counter} must never drift from TransportHealth: {th:?}"
            );
        }
        sched.model().shutdown_workers();
        (done, [th.deaths, th.failovers, th.rejoins, th.retry_attempts, th.timeouts])
    }

    let model = packed_model(9);

    let limit = Duration::from_secs(120);
    let (first, counters_a) = with_watchdog("telemetry-determinism-run1", limit, {
        let model = model.clone();
        move || run_once(&model)
    });
    let (second, counters_b) = with_watchdog("telemetry-determinism-run2", limit, {
        let model = model.clone();
        move || run_once(&model)
    });
    assert_eq!(first, second, "seeded chaos must serve bit-identically across runs");
    assert_eq!(
        counters_a, counters_b,
        "deaths/failovers/rejoins/retries/timeouts must reproduce exactly by seed"
    );
    assert!(counters_a[0] >= 1, "the scripted cut must register as a death: {counters_a:?}");
    assert_eq!(counters_a[1], 1, "exactly one failover to the spare: {counters_a:?}");
}

/// A replica that hangs mid-STATS must stall only the scrape call that
/// probed it — never cross-thread observability — and must then die and
/// rejoin through the normal failover machinery. The spare (which sees
/// no gather traffic, so the proxy's byte budget lands on control
/// probes) is fronted by a `Delay` longer than the heartbeat deadline:
/// the scrape's read deadline expires, the spare is marked dead, and a
/// concurrent observer thread hammering `transport_health()` the whole
/// time must never block behind the scrape's I/O — the regression this
/// pins is the scrape holding the coordinator state lock across
/// per-replica reads.
#[test]
fn hung_stats_scrape_never_blocks_health_readers_and_replica_rejoins() {
    use fineq::core::MetricsRegistry;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    with_watchdog("hung-stats-scrape", Duration::from_secs(120), || {
        let model = packed_model(11);
        let vocab = model.config().vocab;
        let reference = {
            let mut sched = BatchScheduler::new(model.clone(), 4);
            chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
            sched.run()
        };
        // Replica 0 is the clean primary; replica 1 (the spare) sits
        // behind a proxy that passes the LOAD envelopes plus a run of
        // STATS exchanges, then sleeps one relay for 2s — far past the
        // 300ms heartbeat deadline, so the probed read must expire.
        let primary = ChaosWorker::spawn(None);
        let spare = ChaosWorker::spawn(Some(FaultPlan::first_connection(
            FaultScript::delay_after(FAULT_AFTER, Duration::from_secs(2)),
        )));
        let remote = RemoteShardedModel::connect_with(
            &model,
            &[vec![primary.addr.clone(), spare.dial_addr()]],
            chaos_transport(),
        )
        .expect("connect through the delay proxy");
        let registry = Arc::new(MetricsRegistry::new());
        remote.set_telemetry(Arc::clone(&registry));

        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            // The observer: hammer transport_health() on another thread
            // for the whole scrape phase. Every call must return without
            // queueing behind scrape I/O (the delayed probe alone holds
            // its read open for the full 300ms deadline).
            let observer = {
                let remote = &remote;
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let mut calls = 0u64;
                    let mut max_latency = Duration::ZERO;
                    while !done.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        let th = remote.transport_health();
                        max_latency = max_latency.max(t0.elapsed());
                        assert!(th.deadline_ms > 0, "health must stay readable: {th:?}");
                        calls += 1;
                    }
                    (calls, max_latency)
                })
            };
            // Scrape until the byte budget crosses into the Delay and
            // the spare dies on its expired STATS read. Each round
            // passes a request plus a snapshot reply through the proxy.
            let mut scrapes = 0usize;
            for _ in 0..2_000 {
                scrapes = remote.scrape_worker_stats();
                if remote.transport_health().deaths >= 1 {
                    break;
                }
            }
            done.store(true, Ordering::Relaxed);
            let (calls, max_latency) = observer.join().expect("observer thread");
            let th = remote.transport_health();
            assert!(th.deaths >= 1, "the delayed STATS read must kill the spare: {th:?}");
            assert_eq!(th.dead_replicas, 1, "{th:?}");
            assert_eq!(scrapes, 1, "the dying round must still scrape the healthy primary");
            assert!(th.timeouts >= 1, "the death must be a deadline expiry: {th:?}");
            // The responsiveness claim: the delayed scrape blocked for
            // ~300ms of probe I/O, and the observer kept reading health
            // throughout. With the state lock held across that I/O
            // (the old bug) max_latency would sit at the full deadline.
            assert!(calls >= 10, "the observer must have run during the scrapes, got {calls}");
            assert!(
                max_latency < Duration::from_millis(250),
                "transport_health() must never queue behind scrape I/O, worst call took \
                 {max_latency:?} across {calls} calls"
            );
        });

        // The death is observable as an event, and the spare rejoins
        // through the proxy's clean second connection on later probes.
        let events = remote.take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                fineq::lm::WorkerEvent::WorkerDied { shard: 0, replica: 1, .. }
            )),
            "the spare's death must be recorded: {events:?}"
        );
        let mut rejoined = false;
        for _ in 0..200 {
            remote.heartbeat();
            if remote.transport_health().dead_replicas == 0 {
                rejoined = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(rejoined, "the spare must rejoin once the delay has drained");
        assert!(remote.transport_health().rejoins >= 1);
        assert_eq!(remote.scrape_worker_stats(), 2, "both replicas must answer STATS again");

        // And none of it is allowed to touch output: the workload served
        // after the scrape saga is bit-identical to in-process serving.
        let mut sched = DistributedScheduler::new(remote, 4);
        chaos_workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        assert_eq!(sched.run(), reference, "scrape faults must be output-invisible");
        assert_eq!(sched.take_failed(), vec![], "no request may fail");
        sched.model().shutdown_workers();
    });
}
