//! Integration tests of the packed-weight inference engine: the fused
//! kernels against their dequantize-reference, and a FineQ-packed
//! transformer against the dequantized fp32 copy, end to end.

use fineq::core::{FineQuantizer, PackedMatrix};
use fineq::lm::builder::{build_fitted_model, BuilderSpec};
use fineq::lm::corpus::Corpus;
use fineq::lm::eval::perplexity;
use fineq::lm::memory::ServingMemory;
use fineq::lm::{KvCache, WeightSite};
use fineq::pipeline::{quantize_model, quantize_model_packed, PipelineConfig};
use fineq::tensor::{Matrix, Rng};

fn laplace_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let v = rng.laplace(0.0, 0.03);
        if rng.chance(0.04) {
            v * 10.0
        } else {
            v
        }
    })
}

fn pack(w: &Matrix) -> PackedMatrix {
    FineQuantizer::paper().quantize_packed(w)
}

/// The headline kernel property: `packed.matvec(x)` matches
/// `packed.dequantize()` followed by a dense matvec within 1e-5, on random
/// Laplace matrices — including channel lengths not divisible by 3 or 24.
#[test]
fn fused_matvec_matches_dequantize_then_matvec() {
    let mut rng = Rng::seed_from(2024);
    // Explicit awkward widths: 1 (single padded cluster), 23/25 (straddle
    // one block), 47/49 (straddle two), plus aligned 24/48 controls.
    for cols in [1usize, 2, 5, 7, 23, 24, 25, 46, 47, 48, 49, 95] {
        for seed in 0..4u64 {
            let mut wrng = Rng::seed_from(seed * 1000 + cols as u64);
            let w = laplace_matrix(6, cols, &mut wrng);
            let packed = pack(&w);
            let x: Vec<f32> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
            let fused = packed.matvec(&x);
            let dq = packed.dequantize();
            for (r, &yv) in fused.iter().enumerate() {
                let reference: f32 = dq.row(r).iter().zip(&x).map(|(a, b)| a * b).sum();
                assert!(
                    (yv - reference).abs() < 1e-5,
                    "cols {cols} seed {seed} row {r}: fused {yv} vs reference {reference}"
                );
            }
        }
    }
}

/// Fused batched kernels agree with the dense reference on random shapes.
#[test]
fn fused_matmul_variants_match_reference() {
    let mut rng = Rng::seed_from(7);
    for (rows, cols, n) in [(3usize, 9usize, 4usize), (8, 65, 7), (17, 130, 3), (5, 44, 1)] {
        let w = laplace_matrix(rows, cols, &mut rng);
        let packed = pack(&w);
        let dq = packed.dequantize();

        let x = Matrix::from_fn(cols, n, |_, _| rng.normal(0.0, 1.0));
        let y = packed.matmul(&x);
        assert!(y.sub(&dq.matmul(&x)).abs_max() < 1e-5, "matmul {rows}x{cols}x{n}");

        let a = Matrix::from_fn(n, cols, |_, _| rng.normal(0.0, 1.0));
        let yt = packed.matmul_t(&a);
        assert!(yt.sub(&a.matmul_transpose(&dq)).abs_max() < 1e-5, "matmul_t {rows}x{cols}x{n}");
    }
}

/// `dequantize_into` is the allocation-free twin of `dequantize`.
#[test]
fn dequantize_into_reuses_buffers_faithfully() {
    let mut rng = Rng::seed_from(9);
    let w = laplace_matrix(11, 59, &mut rng);
    let packed = pack(&w);
    let mut scratch = Matrix::from_fn(11, 59, |_, _| f32::NAN); // stale junk
    packed.dequantize_into(&mut scratch);
    assert_eq!(scratch, packed.dequantize());
}

/// A `FineQuantizer`-quantized transformer stores actual packed blocks (no
/// fp32 copy of quantized sites) and its forward/forward_step logits match
/// the dequantize-reference path within 1e-4.
#[test]
fn packed_model_executes_like_the_reference() {
    let corpus = Corpus::wiki_like(64, 15);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 4_000, 3);
    let cfg = PipelineConfig::default();
    let q = FineQuantizer::paper();
    let (packed_model, report) = quantize_model_packed(&model, &q, &cfg);
    let (reference, _) = quantize_model(&model, &q, None, &cfg);

    // Storage really is packed at every site.
    assert!(packed_model.is_fully_packed());
    for l in 0..packed_model.n_layers() {
        for site in WeightSite::ALL {
            assert!(packed_model.weight(l, site).as_packed().is_some(), "{l} {site:?}");
        }
    }
    assert!(report.avg_bits < 5.0, "{}", report.avg_bits);

    // Full-sequence logits match.
    let test = corpus.generate(768, 21);
    for chunk in test.tokens().chunks(96) {
        let lp = packed_model.forward(chunk);
        let lr = reference.forward(chunk);
        assert!(lp.sub(&lr).abs_max() < 1e-4, "forward mismatch {}", lp.sub(&lr).abs_max());
    }

    // Incremental decoding matches too.
    let mut cp = KvCache::new(model.n_layers(), model.config().d_model);
    let mut cr = KvCache::new(model.n_layers(), model.config().d_model);
    for &tok in &test.tokens()[..32] {
        let lp = packed_model.forward_step(tok, &mut cp);
        let lr = reference.forward_step(tok, &mut cr);
        for (a, b) in lp.iter().zip(&lr) {
            assert!((a - b).abs() < 1e-4, "step mismatch {a} vs {b}");
        }
    }
}

/// End-to-end accuracy: packed-model perplexity equals the dequantized
/// model's within floating-point tolerance.
#[test]
fn packed_model_perplexity_equals_dequantized_reference() {
    let corpus = Corpus::wiki_like(64, 23);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 4_000, 8);
    let cfg = PipelineConfig::default();
    let q = FineQuantizer::paper();
    let (packed_model, _) = quantize_model_packed(&model, &q, &cfg);
    let (reference, _) = quantize_model(&model, &q, None, &cfg);
    let test = corpus.generate(1_536, 44);
    let pp = perplexity(&packed_model, test.tokens(), 256);
    let dp = perplexity(&reference, test.tokens(), 256);
    assert!((pp - dp).abs() < 1e-3 * dp, "packed ppl {pp} vs dequantized reference {dp}");
    // And the packed model is usable: same sanity bound the dense FineQ
    // path asserts.
    let fp16 = perplexity(&model, test.tokens(), 256);
    assert!(pp < fp16 * 20.0, "packed ppl {pp} vs fp16 {fp16}");
}

/// The serving-memory model sees the measured packed footprint.
#[test]
fn packed_model_shrinks_measured_serving_footprint() {
    let corpus = Corpus::wiki_like(64, 29);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 2_000, 5);
    let (packed_model, _) =
        quantize_model_packed(&model, &FineQuantizer::paper(), &PipelineConfig::default());
    let device = 2.0 * model.weight_footprint_bytes() as f64;
    let dense_plan = ServingMemory::from_model(&model, device);
    let packed_plan = ServingMemory::from_model(&packed_model, device);
    assert!(packed_plan.weight_bytes() < dense_plan.weight_bytes());
    assert!(packed_plan.weight_bits() < dense_plan.weight_bits());
    assert!(packed_plan.max_concurrent_tokens(0.05) > dense_plan.max_concurrent_tokens(0.05));
}
