//! Property-style tests on the core invariants of the reproduction:
//! quantization grids, the FineQ packed format, temporal coding, and the
//! accelerator's functional equivalence.
//!
//! The build container has no crates.io access, so instead of `proptest`
//! these run each property over many seeded random cases (deterministic
//! across runs; failures print the offending case).

use fineq::accel::temporal::TemporalEncoder;
use fineq::accel::TemporalArray;
use fineq::core::{ClusterCode, FineQuantizer};
use fineq::quant::{AsymmetricGrid, Calibration, Rtn, SymmetricGrid, WeightQuantizer};
use fineq::tensor::{softmax_in_place, Matrix, Rng};

const CASES: usize = 64;

/// A small weight matrix with heavy-tailed values and a random shape.
fn weight_matrix(rng: &mut Rng) -> Matrix {
    let rows = 1 + rng.below(5);
    let cols = 1 + rng.below(39);
    Matrix::from_fn(rows, cols, |_, _| {
        let v = rng.laplace(0.0, 0.05);
        if rng.chance(0.05) {
            v * 12.0
        } else {
            v
        }
    })
}

/// Symmetric grids never increase magnitude beyond absmax and keep the
/// sign of values that survive rounding.
#[test]
fn symmetric_grid_is_contractive() {
    let mut rng = Rng::seed_from(101);
    for case in 0..CASES {
        let absmax = rng.uniform_range(0.001, 10.0);
        let x = rng.uniform_range(-20.0, 20.0);
        let bits = 2 + rng.below(6) as u8;
        let g = SymmetricGrid::from_abs_max(absmax, bits);
        let y = g.roundtrip(x);
        assert!(y.abs() <= absmax + 1e-5, "case {case}: absmax {absmax} x {x} bits {bits}");
        if y != 0.0 {
            assert_eq!(y.signum(), x.signum(), "case {case}");
        }
    }
}

/// Asymmetric grids represent zero exactly and bound the error of
/// in-range values by half a step.
#[test]
fn asymmetric_grid_error_bound() {
    let mut rng = Rng::seed_from(102);
    for case in 0..CASES {
        let lo = rng.uniform_range(-5.0, -0.001);
        let hi = rng.uniform_range(0.001, 5.0);
        let x = rng.uniform_range(-5.0, 5.0);
        let bits = 2 + rng.below(6) as u8;
        let g = AsymmetricGrid::from_range(lo, hi, bits);
        assert_eq!(g.roundtrip(0.0), 0.0, "case {case}");
        if x >= lo && x <= hi {
            assert!(
                (g.roundtrip(x) - x).abs() <= g.scale() / 2.0 + 1e-5,
                "case {case}: lo {lo} hi {hi} x {x} bits {bits}"
            );
        }
    }
}

/// FineQ pack -> decode is the identity on the quantized integers, for
/// any weight matrix, and integers respect the per-position bit budget.
#[test]
fn fineq_pack_decode_roundtrip() {
    let mut rng = Rng::seed_from(103);
    for case in 0..CASES {
        let w = weight_matrix(&mut rng);
        let q = FineQuantizer::paper();
        let packed = q.quantize_packed(&w);
        assert_eq!(packed.rows(), w.rows());
        assert_eq!(packed.cols(), w.cols());
        for ch in packed.channels() {
            for k in 0..ch.n_clusters() {
                let ints = ch.cluster_ints(k);
                let code = ch.code_of(k);
                for (pos, &v) in ints.iter().enumerate() {
                    match code.bit_width_at(pos) {
                        0 => assert_eq!(v, 0, "case {case}"),
                        2 => assert!((-1..=1).contains(&v), "case {case}"),
                        3 => assert!((-3..=3).contains(&v), "case {case}"),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

/// FineQ's data storage is exactly 7 bytes per 8 clusters, whatever the
/// data looks like.
#[test]
fn fineq_storage_is_block_aligned() {
    let mut rng = Rng::seed_from(104);
    for _ in 0..CASES {
        let w = weight_matrix(&mut rng);
        let packed = FineQuantizer::paper().quantize_packed(&w);
        for ch in packed.channels() {
            assert_eq!(ch.data_bytes() % 7, 0);
            let blocks = ch.n_clusters().div_ceil(8);
            assert_eq!(ch.data_bytes(), blocks * 7);
        }
    }
}

/// Dequantized FineQ values always stay within the channel absmax
/// (quantization is contractive per channel).
#[test]
fn fineq_dequant_is_contractive() {
    let mut rng = Rng::seed_from(105);
    for _ in 0..CASES {
        let w = weight_matrix(&mut rng);
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let dq = packed.dequantize();
        for r in 0..w.rows() {
            let absmax = w.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for &v in dq.row(r) {
                assert!(v.abs() <= absmax + 1e-5, "row {r} value {v} absmax {absmax}");
            }
        }
    }
}

/// The fused packed GEMV matches the dequantize-then-matvec reference for
/// arbitrary shapes, including channel lengths not divisible by 3 or 24.
#[test]
fn fused_matvec_equals_dequantized_reference() {
    let mut rng = Rng::seed_from(106);
    for case in 0..CASES {
        let w = weight_matrix(&mut rng);
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let x: Vec<f32> = (0..w.cols()).map(|_| rng.normal(0.0, 1.0)).collect();
        let fused = packed.matvec(&x);
        let dq = packed.dequantize();
        for (r, &yv) in fused.iter().enumerate() {
            let reference: f32 = dq.row(r).iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!(
                (yv - reference).abs() < 1e-5,
                "case {case} shape {}x{} row {r}: {yv} vs {reference}",
                w.rows(),
                w.cols()
            );
        }
    }
}

/// Temporal coding is lossless and its group cycle count dominates every
/// member magnitude.
#[test]
fn temporal_coding_roundtrip() {
    let mut rng = Rng::seed_from(107);
    for _ in 0..CASES {
        let mags: Vec<u8> = (0..1 + rng.below(64)).map(|_| rng.below(4) as u8).collect();
        for &m in &mags {
            let stream = TemporalEncoder::encode(m, 3);
            assert_eq!(TemporalEncoder::decode(&stream), m);
        }
        let cycles = TemporalEncoder::group_cycles(mags.iter().copied());
        assert!(cycles >= 1);
        for &m in &mags {
            assert!(cycles >= m as usize);
        }
    }
}

/// The temporal array computes exactly what the software dequantized
/// matmul computes, for arbitrary shapes and tilings.
#[test]
fn temporal_array_equals_reference() {
    let mut rng = Rng::seed_from(108);
    for case in 0..CASES {
        let w = weight_matrix(&mut rng);
        let n = 1 + rng.below(5);
        let kt = 1 + rng.below(19);
        let nt = 1 + rng.below(5);
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let x = Matrix::from_fn(w.cols(), n, |_, _| rng.normal(0.0, 1.0));
        let (y, _) = TemporalArray::new(kt, nt).matmul(&packed, &x);
        let y_ref = packed.dequantize().matmul(&x);
        assert!(y.sub(&y_ref).abs_max() < 1e-3, "case {case} tiling {kt}x{nt}");
    }
}

/// RTN reconstruction error is bounded by half the row's grid step.
#[test]
fn rtn_error_bound() {
    let mut rng = Rng::seed_from(109);
    for _ in 0..CASES {
        let w = weight_matrix(&mut rng);
        let out = Rtn::new(2).quantize(&w, &Calibration::none());
        for r in 0..w.rows() {
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for &v in w.row(r) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let step = (hi - lo) / 3.0;
            for (a, b) in w.row(r).iter().zip(out.dequantized.row(r)) {
                assert!((a - b).abs() <= step / 2.0 + 1e-5);
            }
        }
    }
}

/// Softmax output is a probability vector for any finite input.
#[test]
fn softmax_is_distribution() {
    let mut rng = Rng::seed_from(110);
    for _ in 0..CASES {
        let mut v: Vec<f32> =
            (0..1 + rng.below(63)).map(|_| rng.uniform_range(-50.0, 50.0)).collect();
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(v.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }
}

/// Cluster codes and their wire bits are a bijection.
#[test]
fn cluster_code_wire_bijection() {
    for bits in 0u8..4 {
        let code = ClusterCode::from_bits(bits);
        assert_eq!(code.bits(), bits);
    }
}
