//! Property-based tests (proptest) on the core invariants of the
//! reproduction: quantization grids, the FineQ packed format, temporal
//! coding, and the accelerator's functional equivalence.

use fineq::accel::temporal::TemporalEncoder;
use fineq::accel::TemporalArray;
use fineq::core::{ClusterCode, FineQuantizer};
use fineq::quant::{AsymmetricGrid, Calibration, Rtn, SymmetricGrid, WeightQuantizer};
use fineq::tensor::{softmax_in_place, Matrix, Rng};
use proptest::prelude::*;

/// Strategy: a small weight matrix with heavy-tailed values.
fn weight_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..40, any::<u64>()).prop_map(|(rows, cols, seed)| {
        let mut rng = Rng::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            let v = rng.laplace(0.0, 0.05);
            if rng.chance(0.05) {
                v * 12.0
            } else {
                v
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symmetric grids never increase magnitude beyond absmax and keep
    /// the sign of values that survive rounding.
    #[test]
    fn symmetric_grid_is_contractive(absmax in 0.001f32..10.0, x in -20.0f32..20.0, bits in 2u8..8) {
        let g = SymmetricGrid::from_abs_max(absmax, bits);
        let y = g.roundtrip(x);
        prop_assert!(y.abs() <= absmax + 1e-5);
        if y != 0.0 {
            prop_assert_eq!(y.signum(), x.signum());
        }
    }

    /// Asymmetric grids represent zero exactly and bound the error of
    /// in-range values by half a step.
    #[test]
    fn asymmetric_grid_error_bound(lo in -5.0f32..0.0, hi in 0.0f32..5.0, x in -5.0f32..5.0, bits in 2u8..8) {
        prop_assume!(hi > lo + 1e-3);
        let g = AsymmetricGrid::from_range(lo, hi, bits);
        prop_assert_eq!(g.roundtrip(0.0), 0.0);
        if x >= lo && x <= hi {
            prop_assert!((g.roundtrip(x) - x).abs() <= g.scale() / 2.0 + 1e-5);
        }
    }

    /// FineQ pack -> decode is the identity on the quantized integers,
    /// for any weight matrix.
    #[test]
    fn fineq_pack_decode_roundtrip(w in weight_matrix()) {
        let q = FineQuantizer::paper();
        let packed = q.quantize_packed(&w);
        prop_assert_eq!(packed.rows(), w.rows());
        prop_assert_eq!(packed.cols(), w.cols());
        for ch in packed.channels() {
            for k in 0..ch.n_clusters() {
                let ints = ch.cluster_ints(k);
                let code = ch.code_of(k);
                // Integers respect the per-position bit budget.
                for (pos, &v) in ints.iter().enumerate() {
                    match code.bit_width_at(pos) {
                        0 => prop_assert_eq!(v, 0),
                        2 => prop_assert!((-1..=1).contains(&v)),
                        3 => prop_assert!((-3..=3).contains(&v)),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    /// FineQ's data storage is exactly 7 bytes per 8 clusters, whatever
    /// the data looks like.
    #[test]
    fn fineq_storage_is_block_aligned(w in weight_matrix()) {
        let packed = FineQuantizer::paper().quantize_packed(&w);
        for ch in packed.channels() {
            prop_assert_eq!(ch.data_bytes() % 7, 0);
            let blocks = ch.n_clusters().div_ceil(8);
            prop_assert_eq!(ch.data_bytes(), blocks * 7);
        }
    }

    /// Dequantized FineQ values always stay within the channel absmax
    /// (quantization is contractive per channel).
    #[test]
    fn fineq_dequant_is_contractive(w in weight_matrix()) {
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let dq = packed.dequantize();
        for r in 0..w.rows() {
            let absmax = w.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for &v in dq.row(r) {
                prop_assert!(v.abs() <= absmax + 1e-5, "row {} value {} absmax {}", r, v, absmax);
            }
        }
    }

    /// Temporal coding is lossless and its group cycle count dominates
    /// every member magnitude.
    #[test]
    fn temporal_coding_roundtrip(mags in proptest::collection::vec(0u8..=3, 1..65)) {
        for &m in &mags {
            let stream = TemporalEncoder::encode(m, 3);
            prop_assert_eq!(TemporalEncoder::decode(&stream), m);
        }
        let cycles = TemporalEncoder::group_cycles(mags.iter().copied());
        prop_assert!(cycles >= 1);
        for &m in &mags {
            prop_assert!(cycles >= m as usize);
        }
    }

    /// The temporal array computes exactly what the software dequantized
    /// matmul computes, for arbitrary shapes and tilings.
    #[test]
    fn temporal_array_equals_reference(
        w in weight_matrix(),
        n in 1usize..6,
        kt in 1usize..20,
        nt in 1usize..6,
        xseed in any::<u64>(),
    ) {
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let mut rng = Rng::seed_from(xseed);
        let x = Matrix::from_fn(w.cols(), n, |_, _| rng.normal(0.0, 1.0));
        let (y, _) = TemporalArray::new(kt, nt).matmul(&packed, &x);
        let y_ref = packed.dequantize().matmul(&x);
        prop_assert!(y.sub(&y_ref).abs_max() < 1e-3);
    }

    /// RTN reconstruction error is bounded by half the row's grid step.
    #[test]
    fn rtn_error_bound(w in weight_matrix()) {
        let out = Rtn::new(2).quantize(&w, &Calibration::none());
        for r in 0..w.rows() {
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for &v in w.row(r) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let step = (hi - lo) / 3.0;
            for (a, b) in w.row(r).iter().zip(out.dequantized.row(r)) {
                prop_assert!((a - b).abs() <= step / 2.0 + 1e-5);
            }
        }
    }

    /// Softmax output is a probability vector for any finite input.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let mut v = xs;
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    /// Cluster codes and their wire bits are a bijection.
    #[test]
    fn cluster_code_wire_bijection(bits in 0u8..4) {
        let code = ClusterCode::from_bits(bits);
        prop_assert_eq!(code.bits(), bits);
    }
}
