//! End-to-end observability proof (ISSUE 9).
//!
//! The contract: telemetry is a pure *observer*. A distributed
//! 2-shard × 2-replica deployment with one scripted replica cut must
//! serve **bit-identically** to the in-process engine (the existing
//! chaos oracle) while the scraped cluster metrics tell the whole story:
//!
//! * nonzero gather-latency histogram counts for every site kind,
//! * exactly one death and one failover — in the registry counters, in
//!   [`TransportHealth`], and in the drained [`WorkerEvent`]s, all
//!   agreeing,
//! * per-request TTFT and inter-token histograms covering every finished
//!   request (driven by a [`FakeClock`], so bucket placement is
//!   deterministic),
//! * worker-side `STATS` scrapes folded into one cluster view whose
//!   worker gather counts cover the coordinator's successful gathers,
//! * the whole plane served as Prometheus-style text over a real HTTP
//!   scrape.
//!
//! Plus drain-once coverage for the event-drain APIs the lifecycle
//! tracing leans on: `take_events`, `take_failed`,
//! `take_preemption_events` — drained exactly once, in step order, under
//! interleaved stepping.

use fineq::core::{
    FakeClock, FaultPlan, FaultProxy, FaultScript, FineQuantizer, MetricsRegistry, MetricsServer,
    RetryPolicy,
};
use fineq::lm::{
    BatchKvCache, BatchScheduler, DistributedScheduler, KernelScratch, ModelConfig,
    RemoteShardedModel, Scheduler, ServeModel, ServeRequest, StepError, Transformer,
    TransportConfig, WeightSite,
};
use fineq::tensor::{Matrix, Rng};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Past the LOAD envelopes, inside gather traffic (see chaos_serving.rs).
const FAULT_AFTER: usize = 25_000;

struct ChaosWorker {
    child: Child,
    addr: String,
    proxy: Option<FaultProxy>,
}

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

impl ChaosWorker {
    fn spawn(plan: Option<FaultPlan>) -> Self {
        let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
        let path: PathBuf =
            std::env::temp_dir().join(format!("fineq-telem-{}-{n}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let child = Command::new(env!("CARGO_BIN_EXE_fineq-worker"))
            .arg(&addr)
            .arg("1000")
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fineq-worker");
        let deadline = Instant::now() + Duration::from_secs(20);
        while !path.exists() {
            assert!(Instant::now() < deadline, "worker never bound {addr}");
            std::thread::sleep(Duration::from_millis(5));
        }
        let proxy = plan.map(|p| FaultProxy::spawn(&addr, p).expect("spawn fault proxy"));
        Self { child, addr, proxy }
    }

    fn dial_addr(&self) -> String {
        match &self.proxy {
            Some(p) => p.addr().to_string(),
            None => self.addr.clone(),
        }
    }
}

impl Drop for ChaosWorker {
    fn drop(&mut self) {
        if let Some(p) = &self.proxy {
            p.stop();
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(path) = self.addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn with_watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            handle.join().expect("scenario thread");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(_) => unreachable!("sender dropped without sending"),
            Err(panic) => std::panic::resume_unwind(panic),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("telemetry scenario `{name}` exceeded its {limit:?} watchdog (hang)")
        }
    }
}

fn packed_model(seed: u64) -> Transformer {
    let cfg = ModelConfig::new(24, 8, 2, 2, 16);
    let mut m = Transformer::zeros(cfg.clone());
    let mut rng = Rng::seed_from(seed);
    *m.embedding_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    *m.head_mut() = Matrix::from_fn(cfg.vocab, cfg.d_model, |_, _| rng.normal(0.0, 0.4));
    let q = FineQuantizer::paper();
    for l in 0..m.n_layers() {
        for site in WeightSite::ALL {
            let (r, c) = {
                let w = m.weight(l, site);
                (w.rows(), w.cols())
            };
            let dense = Matrix::from_fn(r, c, |_, _| rng.laplace(0.0, 0.04));
            *m.weight_mut(l, site) = q.quantize_packed(&dense).into();
        }
    }
    m
}

fn workload(vocab: usize, mut submit: impl FnMut(ServeRequest)) {
    for id in 0..6u64 {
        let prompt: Vec<usize> =
            (0..3 + id as usize % 3).map(|i| (id as usize * 7 + i * 3 + 1) % vocab).collect();
        submit(ServeRequest {
            temperature: 0.9,
            seed: 500 + id,
            eos: Some(0),
            ..ServeRequest::new(id, prompt, 6 + id as usize % 3)
        });
    }
}

fn fast_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_secs(2),
        load_timeout: Duration::from_secs(10),
        gather_timeout: Duration::from_millis(500),
        heartbeat_timeout: Duration::from_millis(300),
        retry: RetryPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(120),
            max_attempts: 3,
            jitter_seed: 0xC4A0_5EED,
        },
        ..TransportConfig::default()
    }
}

/// The acceptance scenario: a 2-shard × 2-replica deployment, shard 0's
/// primary cut mid-serving through a scripted proxy, fully observed.
#[test]
fn distributed_replica_cut_is_bit_identical_and_fully_observed() {
    with_watchdog("observed-cut", Duration::from_secs(120), || {
        let model = packed_model(21);
        let vocab = model.config().vocab;
        let reference = {
            let mut sched = BatchScheduler::new(model.clone(), 4);
            workload(vocab, |r| sched.submit(r).expect("no KV budget"));
            sched.run()
        };
        let total_generated: usize = reference.iter().map(|f| f.generated.len()).sum();

        let mut workers: Vec<ChaosWorker> = Vec::new();
        let mut groups: Vec<Vec<String>> = Vec::new();
        for s in 0..2 {
            let mut addrs = Vec::new();
            for r in 0..2 {
                let plan = (s == 0 && r == 0)
                    .then(|| FaultPlan::first_connection(FaultScript::cut_after(FAULT_AFTER)));
                let w = ChaosWorker::spawn(plan);
                addrs.push(w.dial_addr());
                workers.push(w);
            }
            groups.push(addrs);
        }
        let remote = RemoteShardedModel::connect_with(&model, &groups, fast_transport())
            .expect("connect through the fault proxy");
        let mut sched = DistributedScheduler::new(remote, 4);

        // Deterministic clock: every step advances time by 250us, so
        // every TTFT/inter-token sample is a known multiple of 250 and
        // lands in a known power-of-two bucket.
        let clock = Arc::new(FakeClock::new());
        let registry = Arc::new(MetricsRegistry::with_clock(clock.clone()));
        sched.set_telemetry(Arc::clone(&registry));

        workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        while !sched.is_idle() {
            clock.advance(250);
            sched.step();
        }
        let finished = sched.take_finished();

        // 1. The oracle: the cut is output-invisible, bit for bit.
        assert_eq!(finished, reference, "the replica cut must be output-invisible");
        assert_eq!(sched.take_failed(), vec![], "a live spare must mask the fault");

        // 2. Exactly one death, one failover — and the three planes
        // (registry counters, TransportHealth, WorkerEvents) agree.
        let th = sched.stats().transport.expect("transport health");
        assert_eq!((th.deaths, th.failovers), (1, 1), "{th:?}");
        assert_eq!(registry.counter("fineq_transport_deaths_total").get(), 1);
        assert_eq!(registry.counter("fineq_transport_failovers_total").get(), 1);
        assert_eq!(registry.counter("fineq_transport_rejoins_total").get(), th.rejoins);
        assert_eq!(registry.counter("fineq_transport_timeouts_total").get(), th.timeouts);
        assert_eq!(
            registry.counter("fineq_transport_retry_attempts_total").get(),
            th.retry_attempts
        );
        let events = sched.model().take_events();
        let died = events
            .iter()
            .filter(|e| matches!(e, fineq::lm::WorkerEvent::WorkerDied { .. }))
            .count();
        let failed_over = events
            .iter()
            .filter(|e| matches!(e, fineq::lm::WorkerEvent::FailedOver { .. }))
            .count();
        assert_eq!((died, failed_over), (1, 1), "events must agree with counters: {events:?}");
        assert_eq!(sched.model().take_events(), vec![], "take_events drains once");

        // 3. Gather latency: every site kind was observed. The count per
        // site equals the successful site gathers; the FakeClock did not
        // advance inside a gather, so the latencies land in bucket 0 —
        // counts, not values, are the deterministic signal.
        let mut coordinator_gathers = 0u64;
        for site in WeightSite::ALL {
            let h = registry.histogram(&format!("fineq_gather_us_{}", site.metric_label()));
            assert!(h.count() > 0, "no gather latency recorded for {}", site.metric_label());
            coordinator_gathers += h.count();
        }

        // 4. Per-request lifecycle histograms: one TTFT sample per
        // finished request, one inter-token sample per follow-on token.
        let ttft = registry.histogram("fineq_ttft_us");
        let inter = registry.histogram("fineq_inter_token_us");
        assert_eq!(ttft.count(), finished.len() as u64, "one TTFT per finished request");
        assert_eq!(
            inter.count(),
            (total_generated - finished.len()) as u64,
            "one inter-token sample per token after the first"
        );
        // Each step advanced the clock 250us, so every TTFT is >= 250
        // and its bucket upper bound >= 256: deterministic placement.
        assert!(ttft.p50() >= 256, "TTFT p50 must sit in a >=256us bucket, got {}", ttft.p50());
        assert_eq!(inter.p50(), 256, "inter-token latency is exactly one 250us step per token");
        assert_eq!(registry.counter("fineq_requests_finished_total").get(), finished.len() as u64);

        // 5. Worker STATS scrapes: heal the fleet, scrape all four
        // replicas, and check the cluster view covers the coordinator's
        // gathers (shard 1's primary alone serves every successful
        // gather once, and replays/pre-cut traffic only add).
        let mut live = 0;
        for _ in 0..50 {
            live = sched.model().heartbeat().live();
            if live == 4 {
                break;
            }
        }
        assert_eq!(live, 4, "the cut replica must rejoin through the healed proxy");
        assert_eq!(sched.model().scrape_worker_stats(), 4, "all four replicas must answer STATS");
        let cluster = registry.cluster_snapshot();
        let worker_gathers = *cluster.counters.get("fineq_worker_gathers_total").expect("scraped");
        assert!(
            worker_gathers >= coordinator_gathers,
            "worker-side gathers ({worker_gathers}) must cover coordinator-side successful \
             gathers ({coordinator_gathers})"
        );
        assert!(*cluster.counters.get("fineq_worker_loads_total").expect("scraped") > 0);

        // 6. The scrape endpoint, end to end over real HTTP.
        let render_registry = Arc::clone(&registry);
        let server = MetricsServer::serve("127.0.0.1:0", move || render_registry.render_text())
            .expect("bind metrics endpoint");
        let mut conn = std::net::TcpStream::connect(server.addr()).expect("connect scrape");
        use std::io::{Read as _, Write as _};
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send scrape");
        let mut body = String::new();
        conn.read_to_string(&mut body).expect("read scrape");
        assert!(body.starts_with("HTTP/1.0 200 OK"), "scrape must answer 200: {body:.0?}");
        for needle in [
            "fineq_transport_deaths_total 1",
            "fineq_transport_failovers_total 1",
            "fineq_ttft_us_count 6",
            "fineq_worker_gathers_total",
            "fineq_live_replicas 4",
        ] {
            assert!(body.contains(needle), "scrape body must contain {needle:?}:\n{body}");
        }

        // 7. SchedulerStats' stable JSON rendering carries the same story.
        let json = sched.stats().to_json();
        assert!(json.contains("\"transport\":{"), "stats JSON must embed transport: {json}");
        assert!(json.contains("\"deaths\":1"), "stats JSON must agree on deaths: {json}");

        sched.model().shutdown_workers();
    });
}

/// A wrapper model whose steps fail during a scripted window — the
/// in-process way to exercise `take_failed`.
struct FailingModel {
    inner: Transformer,
    steps: AtomicUsize,
    fail_on: usize,
}

impl ServeModel for FailingModel {
    fn config(&self) -> &ModelConfig {
        self.inner.config()
    }

    fn forward_step_batch_with(
        &self,
        tokens: &[usize],
        slots: &[usize],
        cache: &mut BatchKvCache,
        scratch: &mut KernelScratch,
    ) -> Matrix {
        self.inner.forward_step_batch_with(tokens, slots, cache, scratch)
    }

    fn try_forward_step_batch_with(
        &self,
        tokens: &[usize],
        slots: &[usize],
        cache: &mut BatchKvCache,
        scratch: &mut KernelScratch,
    ) -> Result<Matrix, StepError> {
        let step = self.steps.fetch_add(1, Ordering::Relaxed);
        if step == self.fail_on {
            return Err(StepError::Transport { detail: format!("injected failure at {step}") });
        }
        Ok(self.inner.forward_step_batch_with(tokens, slots, cache, scratch))
    }

    fn thread_pool(&self) -> Option<&Arc<fineq::core::ThreadPool>> {
        None
    }
}

/// `take_failed` returns each failure exactly once, in failure order,
/// regardless of whether the caller drains per step or once at the end.
#[test]
fn take_failed_drains_once_and_preserves_order() {
    let model = packed_model(22);
    let vocab = model.config().vocab;
    let run = |drain_each_step: bool| -> Vec<u64> {
        let failing = FailingModel { inner: model.clone(), steps: AtomicUsize::new(0), fail_on: 2 };
        let mut sched = Scheduler::new(failing, 2);
        workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        let mut ids = Vec::new();
        while !sched.is_idle() {
            sched.step();
            if drain_each_step {
                ids.extend(sched.take_failed().into_iter().map(|f| f.id));
            }
        }
        if !drain_each_step {
            ids.extend(sched.take_failed().into_iter().map(|f| f.id));
        }
        assert_eq!(sched.take_failed(), vec![], "a second drain must be empty");
        assert_eq!(sched.stats().failed, 0, "draining clears the stats ledger");
        ids
    };
    let per_step = run(true);
    let at_end = run(false);
    assert!(!per_step.is_empty(), "the injected step failure must kill its active requests");
    assert_eq!(per_step, at_end, "drain granularity must not change content or order");
}

/// `take_preemption_events` under real pool pressure: drained exactly
/// once, and per-step drains concatenate to the end-of-run drain.
#[test]
fn take_preemption_events_drain_once_and_preserve_order() {
    let model = packed_model(23);
    let vocab = model.config().vocab;
    let submit_pressure = |sched: &mut BatchScheduler| {
        for id in 0..8u64 {
            let prompt: Vec<usize> = (0..4).map(|i| (id as usize + i * 3 + 1) % vocab).collect();
            sched
                .submit(ServeRequest {
                    temperature: 0.9,
                    seed: 800 + id,
                    ..ServeRequest::new(id, prompt, 24)
                })
                .expect("fits the pool");
        }
    };
    let run = |drain_each_step: bool| -> (Vec<(u64, u64)>, Vec<u64>) {
        let mut sched = BatchScheduler::new(model.clone(), 4);
        sched.set_page_budget(4).expect("nothing queued yet");
        submit_pressure(&mut sched);
        let mut events = Vec::new();
        while !sched.is_idle() {
            sched.step();
            if drain_each_step {
                events.extend(sched.take_preemption_events().into_iter().map(|e| (e.id, e.step)));
            }
        }
        if !drain_each_step {
            events.extend(sched.take_preemption_events().into_iter().map(|e| (e.id, e.step)));
        }
        assert_eq!(sched.take_preemption_events(), vec![], "a second drain must be empty");
        let finished: Vec<u64> = sched.take_finished().into_iter().map(|f| f.id).collect();
        (events, finished)
    };
    let (per_step, finished_a) = run(true);
    let (at_end, finished_b) = run(false);
    assert!(!per_step.is_empty(), "the 4-page pool must actually preempt");
    assert_eq!(per_step, at_end, "drain granularity must not change content or order");
    assert_eq!(finished_a, finished_b, "preemption bookkeeping must not touch output");
    let steps: Vec<u64> = per_step.iter().map(|&(_, step)| step).collect();
    assert!(steps.windows(2).all(|w| w[0] <= w[1]), "events must be in step order: {steps:?}");
}

/// Telemetry must never perturb output: the same workload with an
/// enabled registry, a disabled registry, and no registry at all yields
/// one identical token stream.
#[test]
fn telemetry_is_output_invisible_in_process() {
    let model = packed_model(24);
    let vocab = model.config().vocab;
    let run = |registry: Option<MetricsRegistry>| {
        let mut sched = BatchScheduler::new(model.clone(), 4);
        if let Some(r) = registry {
            sched.set_telemetry(Arc::new(r));
        }
        workload(vocab, |r| sched.submit(r).expect("no KV budget"));
        sched.run()
    };
    let bare = run(None);
    let clock = Arc::new(FakeClock::new());
    assert_eq!(bare, run(Some(MetricsRegistry::with_clock(clock))), "enabled registry");
    assert_eq!(bare, run(Some(MetricsRegistry::disabled())), "disabled registry");
}

/// The scrape endpoint must serve clients that dribble their request:
/// `MetricsServer` reads until the blank line that ends the HTTP headers
/// (bounded by its drain deadline) before answering, rather than
/// replying to whatever the first `read` happened to return. A request
/// written one byte at a time — dozens of reads' worth of segmentation —
/// still gets the full exposition back.
#[test]
fn metrics_server_drains_segmented_requests() {
    use std::io::{Read as _, Write as _};

    let registry = MetricsRegistry::new();
    registry.counter("fineq_segmented_scrapes_total").inc();
    let server = MetricsServer::serve("127.0.0.1:0", move || registry.render_text())
        .expect("bind metrics endpoint");
    let mut conn = std::net::TcpStream::connect(server.addr()).expect("connect scrape");
    conn.set_nodelay(true).expect("disable Nagle so each byte is its own segment");
    for &b in b"GET /metrics HTTP/1.0\r\nUser-Agent: dribble\r\n\r\n".iter() {
        conn.write_all(&[b]).expect("send one byte");
        conn.flush().expect("flush the byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut body = String::new();
    conn.read_to_string(&mut body).expect("read scrape");
    assert!(body.starts_with("HTTP/1.0 200 OK"), "segmented scrape must answer 200: {body:?}");
    assert!(
        body.contains("fineq_segmented_scrapes_total 1"),
        "segmented scrape must carry the full exposition:\n{body}"
    );
}
