//! Cross-crate integration tests: the full FineQ pipeline from weights
//! through the packed format to the accelerator, and the paper's
//! walk-through examples.

use fineq::accel::{HardwareDecoder, SystolicArray, TemporalArray};
use fineq::core::{ClusterCode, FineQuantizer};
use fineq::lm::builder::{build_fitted_model, BuilderSpec};
use fineq::lm::corpus::Corpus;
use fineq::lm::eval::perplexity;
use fineq::pipeline::{collect_calibration, quantize_model, PipelineConfig};
use fineq::quant::{Calibration, Gptq, Owq, PbLlm, Rtn, Uniform, WeightQuantizer};
use fineq::tensor::{Matrix, Rng};

/// The Fig. 4 walk-through, end to end through the public API: quantize,
/// pack, hardware-decode, dequantize.
#[test]
fn fig4_walkthrough_through_hardware_decoder() {
    let w = Matrix::from_rows(&[
        vec![0.10, 0.12, 0.11, 0.12, 0.13, 0.04],
        vec![0.27, 0.03, 0.11, 0.19, 0.01, 0.16],
        vec![0.04, 0.02, 0.04, 0.04, 0.04, 0.03],
        vec![0.17, 0.12, 0.01, 0.01, 0.24, 0.03],
    ]);
    let packed = FineQuantizer::paper().quantize_packed(&w);

    // Hardware decoder sees exactly the software integers.
    let mut dec = HardwareDecoder::new();
    let expected = [
        ([1, 1, 1], [1, 1, 0]),
        ([3, 0, 1], [2, 0, 2]),
        ([1, 1, 1], [1, 1, 1]),
        ([2, 2, 0], [0, 3, 0]),
    ];
    for (r, (c0, c1)) in expected.iter().enumerate() {
        let lanes = dec.decode_block(&packed.channels()[r].blocks()[0..7]);
        for j in 0..3 {
            assert_eq!(lanes[0][j].signed(), c0[j], "row {r} cluster 0 lane {j}");
            assert_eq!(lanes[1][j].signed(), c1[j], "row {r} cluster 1 lane {j}");
        }
    }
    // Index codes match the paper's "00 10 00 11".
    let codes: Vec<u8> = (0..4).map(|r| packed.channels()[r].code_of(0).bits()).collect();
    assert_eq!(codes, vec![0b00, 0b10, 0b00, 0b11]);
}

/// The Fig. 7 temporal-coding walk-through: integer weights [1 1 2 2]
/// against the paper's 4x4 activation matrix give [35 29 26 37].
#[test]
fn fig7_temporal_coding_walkthrough() {
    // Craft a channel whose quantized integers are exactly
    // [1 0 1 | 2 0 2 | 3 0 0] with s3 = 0.06: three outlier clusters
    // (code 10, the weakest middle value sacrificed), the third supplying
    // the channel absmax 0.18 = 3 * s3.
    let w = Matrix::from_rows(&[vec![0.06, 0.005, 0.06, 0.12, 0.005, 0.12, 0.18, 0.0, 0.0]]);
    let packed = FineQuantizer::paper().quantize_packed(&w);
    let ch = &packed.channels()[0];
    assert_eq!(ch.cluster_ints(0), [1, 0, 1]);
    assert_eq!(ch.cluster_ints(1), [2, 0, 2]);
    assert_eq!(ch.cluster_ints(2), [3, 0, 0]);

    // Place the paper's M rows on the lanes carrying weights 1, 1, 2, 2;
    // remaining lanes read zero activations.
    let m =
        [[8.0f32, 4.0, 2.0, 3.0], [7.0, 9.0, 6.0, 6.0], [9.0, 5.0, 8.0, 8.0], [1.0, 3.0, 1.0, 6.0]];
    let lane_of = [Some(0usize), None, Some(1), Some(2), None, Some(3), None, None, None];
    let x = Matrix::from_fn(9, 4, |r, c| lane_of[r].map(|i| m[i][c]).unwrap_or(0.0));
    let (y, stats) = TemporalArray::paper().matmul(&packed, &x);
    let y_ref = packed.dequantize().matmul(&x);
    assert!(y.sub(&y_ref).abs_max() < 1e-5);
    // y = s3 * (1*M0 + 1*M1 + 2*M2 + 2*M3) = 0.06 * [35 29 26 37], the
    // paper's Fig. 7 result.
    for (j, expect) in [35.0f32, 29.0, 26.0, 37.0].iter().enumerate() {
        assert!((y[(0, j)] - 0.06 * expect).abs() < 1e-4, "col {j}: {}", y[(0, j)]);
    }
    // Early termination: the longest stream is the magnitude-3 cluster.
    assert!(stats.cycles_per_step() <= 3.0);
}

/// Quantized-model perplexity ordering (the paper's Table I shape):
/// FP16 <= FineQ < {GPTQ, RTN} < Uniform at ~2 bits.
#[test]
fn table1_ordering_holds_on_a_small_model() {
    let corpus = Corpus::wiki_like(64, 3);
    let spec = BuilderSpec::tiny();
    let (model, _) = build_fitted_model(&spec, &corpus, 6_000, 5);
    let test = corpus.generate(2_048, 77);
    let calib_stream = corpus.generate(512, 55);
    let calib = collect_calibration(&model, calib_stream.tokens(), 128);
    let cfg = PipelineConfig::default();

    let ppl = |q: &dyn WeightQuantizer| {
        let (qm, _) = quantize_model(&model, q, Some(&calib), &cfg);
        perplexity(&qm, test.tokens(), 256)
    };
    let fp16 = perplexity(&model, test.tokens(), 256);
    let fineq = ppl(&FineQuantizer::paper());
    let rtn = ppl(&Rtn::new(2));
    let uniform = ppl(&Uniform::new(2));

    assert!(fp16 <= fineq * 1.02, "fp16 {fp16} vs fineq {fineq}");
    assert!(fineq < rtn, "fineq {fineq} vs rtn {rtn}");
    assert!(rtn < uniform * 1.5, "rtn {rtn} vs uniform {uniform}");
    assert!(fineq < uniform, "fineq {fineq} vs uniform {uniform}");
}

/// Every Table I method runs through the whole-model pipeline and keeps
/// the model finite.
#[test]
fn all_methods_produce_finite_models() {
    let corpus = Corpus::c4_like(64, 9);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 4_000, 2);
    let test = corpus.generate(512, 5);
    let cfg = PipelineConfig::default();
    let methods: Vec<Box<dyn WeightQuantizer>> = vec![
        Box::new(Rtn::new(2)),
        Box::new(Uniform::new(2)),
        Box::new(Gptq::new(2)),
        Box::new(PbLlm::new(0.10)),
        Box::new(Owq::new(2, 16, 0.02)),
        Box::new(FineQuantizer::paper()),
    ];
    for m in methods {
        let (qm, report) = quantize_model(&model, m.as_ref(), None, &cfg);
        let ppl = perplexity(&qm, test.tokens(), 128);
        assert!(ppl.is_finite() && ppl > 1.0, "{}: ppl {ppl}", m.name());
        assert!(report.avg_bits > 0.5, "{}", m.name());
    }
}

/// The temporal array and the baseline array agree (on FineQ-quantized
/// weights) with the software reference for random shapes.
#[test]
fn arrays_agree_with_software_reference_on_random_shapes() {
    let mut rng = Rng::seed_from(12);
    for (m, k, n) in [(3usize, 9usize, 4usize), (8, 65, 7), (17, 130, 3)] {
        let w = Matrix::from_fn(m, k, |_, _| rng.laplace(0.0, 0.05));
        let packed = FineQuantizer::paper().quantize_packed(&w);
        let x = Matrix::from_fn(k, n, |_, _| rng.normal(0.0, 1.0));
        let (yt, _) = TemporalArray::new(16, 8).matmul(&packed, &x);
        let y_ref = packed.dequantize().matmul(&x);
        assert!(yt.sub(&y_ref).abs_max() < 1e-4, "temporal mismatch at {m}x{k}x{n}");
        let (ys, _) = SystolicArray::new(16, 8).matmul(&w, &x);
        assert!(ys.sub(&w.matmul(&x)).abs_max() < 1e-3, "systolic mismatch at {m}x{k}x{n}");
    }
}

/// Packed storage lands at the paper's 2.33 bits on realistic widths and
/// every cluster code appearing in the stats is decodable.
#[test]
fn packed_format_bit_budget_and_codes() {
    let mut rng = Rng::seed_from(21);
    let w = Matrix::from_fn(32, 3072, |_, _| {
        let v = rng.laplace(0.0, 0.01);
        if rng.chance(0.004) {
            v * 25.0
        } else {
            v
        }
    });
    let q = FineQuantizer::paper();
    let packed = q.quantize_packed(&w);
    assert!((packed.avg_bits_data() - 7.0 / 3.0).abs() < 1e-9);
    assert!(packed.avg_bits_total() < 2.35);
    let stats = q.stats(&w);
    assert_eq!(stats.total_clusters, 32 * 1024);
    assert!(stats.outlier_fraction() > 0.0 && stats.outlier_fraction() < 1.0);
    // Decoding the packed bytes twice is deterministic, and the decoded
    // values sit on the channel grids (requantizing is NOT asserted to be
    // a fixed point: weakest-position tie-breaks may legitimately pick a
    // different, equal-error encoding on exact grid values).
    let dq = packed.dequantize();
    assert_eq!(packed.dequantize(), dq);
    for (r, ch) in packed.channels().iter().enumerate() {
        let s3 = ch.scale3();
        for &v in dq.row(r) {
            let k = v / s3;
            assert!((k - k.round()).abs() < 1e-4, "off-grid value {v}");
        }
    }
}

/// Calibration actually helps GPTQ at the whole-model level.
#[test]
fn gptq_benefits_from_calibration() {
    let corpus = Corpus::wiki_like(64, 17);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 4_000, 4);
    let test = corpus.generate(1_024, 3);
    let calib_stream = corpus.generate(512, 2);
    let calib = collect_calibration(&model, calib_stream.tokens(), 128);
    let cfg = PipelineConfig::default();
    let gptq = Gptq::new(2);
    let (with_c, _) = quantize_model(&model, &gptq, Some(&calib), &cfg);
    let (without_c, _) = quantize_model(&model, &gptq, None, &cfg);
    let p_with = perplexity(&with_c, test.tokens(), 256);
    let p_without = perplexity(&without_c, test.tokens(), 256);
    assert!(
        p_with < p_without * 1.05,
        "calibrated GPTQ {p_with} should not lose to uncalibrated {p_without}"
    );
}

/// Ablation: loosening the outlier threshold to infinity degenerates
/// FineQ toward flat 2-bit per-channel quantization and hurts accuracy on
/// outlier-heavy weights.
#[test]
fn outlier_protection_is_load_bearing() {
    use fineq::core::FineQConfig;
    let mut rng = Rng::seed_from(8);
    let w = Matrix::from_fn(24, 384, |_, _| {
        let v = rng.laplace(0.0, 0.01);
        if rng.chance(0.02) {
            v * 20.0
        } else {
            v
        }
    });
    let paper = FineQuantizer::paper();
    let no_protect = FineQuantizer::with_config(FineQConfig {
        outlier_threshold: 1e9, // rule never fires
        ..FineQConfig::paper()
    });
    let calib = Calibration::none();
    let mse_paper = paper.quantize(&w, &calib).dequantized.mse(&w);
    let mse_flat = no_protect.quantize(&w, &calib).dequantized.mse(&w);
    assert!(
        mse_paper < mse_flat * 0.8,
        "protection should cut error: {mse_paper:.3e} vs {mse_flat:.3e}"
    );
}

/// Cluster codes observed across a large random matrix cover all four
/// wire values (pair harmonization included).
#[test]
fn all_cluster_codes_are_exercised() {
    let mut rng = Rng::seed_from(33);
    let w = Matrix::from_fn(64, 96, |_, _| rng.laplace(0.0, 0.02));
    let q = FineQuantizer::paper();
    let stats = q.stats(&w);
    for (i, &count) in stats.code_counts.iter().enumerate() {
        assert!(count > 0, "code {i:02b} never appeared");
    }
    let _ = ClusterCode::ALL;
}
