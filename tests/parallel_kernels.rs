//! Bit-identical-under-parallelism suite: the channel-parallel kernels and
//! everything stacked on them must produce **exactly** the serial output at
//! every thread count — `assert_eq!`, not approximate comparison.
//!
//! This is the invariant that lets the serving stack treat thread count as
//! pure execution configuration: the pool distributes whole channels, each
//! channel's accumulation order is untouched, and every worker writes a
//! disjoint output range. Combined with PR 2's batch-composition guarantee,
//! a served request's tokens depend on nothing but the model, the prompt
//! and the seed — not on batch size, admission order, *or* core count.

use fineq::core::{FineQuantizer, KernelScratch, PackedMatrix, ThreadPool};
use fineq::lm::builder::{build_fitted_model, BuilderSpec};
use fineq::lm::corpus::Corpus;
use fineq::lm::{BatchKvCache, KvCache, ServeRequest, Transformer, WeightSite};
use fineq::pipeline::{serve_packed_with_threads, PipelineConfig};
use fineq::tensor::{Matrix, Rng};
use std::sync::Arc;

/// Thread counts the whole suite sweeps: serial, even splits, and an odd
/// count that cannot tile the channel ranges evenly.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn random_packed(rows: usize, cols: usize, seed: u64) -> PackedMatrix {
    let mut rng = Rng::seed_from(seed);
    let w = Matrix::from_fn(rows, cols, |_, _| {
        let v = rng.laplace(0.0, 0.02);
        if rng.chance(0.04) {
            v * 10.0
        } else {
            v
        }
    });
    FineQuantizer::paper().quantize_packed(&w)
}

fn fitted_tiny() -> (Transformer, Corpus) {
    let corpus = Corpus::wiki_like(64, 5);
    let (model, _) = build_fitted_model(&BuilderSpec::tiny(), &corpus, 3_000, 2);
    (model, corpus)
}

/// Kernel level: `matvec` / `matmul_t` / `matmul` across thread counts and
/// deliberately awkward shapes — partial final block (cols not a multiple
/// of 24), single row, single column, and a width crossing several blocks.
#[test]
fn kernels_are_bit_identical_at_every_thread_count() {
    for (rows, cols, seed) in
        [(16usize, 93usize, 1u64), (1, 24, 2), (5, 1, 3), (40, 121, 4), (7, 48, 5)]
    {
        let packed = random_packed(rows, cols, seed);
        let mut rng = Rng::seed_from(seed ^ 0xBEEF);
        let x: Vec<f32> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
        let a = Matrix::from_fn(6, cols, |_, _| rng.normal(0.0, 1.0));
        let xm = Matrix::from_fn(cols, 4, |_, _| rng.normal(0.0, 1.0));
        let serial_mv = packed.matvec(&x);
        let serial_mt = packed.matmul_t(&a);
        let serial_mm = packed.matmul(&xm);
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let mut scratch = KernelScratch::new();
            let mut mv = vec![f32::NAN; rows];
            packed.matvec_into(&x, &mut mv, Some(&pool));
            assert_eq!(mv, serial_mv, "matvec {rows}x{cols} @ {threads} threads");
            let mut mt = Matrix::zeros(6, rows);
            packed.matmul_t_into_with(&a, &mut mt, &mut scratch, Some(&pool));
            assert_eq!(mt, serial_mt, "matmul_t {rows}x{cols} @ {threads} threads");
            let mm = packed.matmul_with(&xm, &mut scratch, Some(&pool));
            assert_eq!(mm, serial_mm, "matmul {rows}x{cols} @ {threads} threads");
        }
    }
}

/// Model level: whole forward passes (windowed and incremental) of a fully
/// packed transformer, with the pool installed on the model itself.
#[test]
fn packed_forward_passes_are_bit_identical_at_every_thread_count() {
    let (model, corpus) = fitted_tiny();
    let q = FineQuantizer::paper();
    let mut packed = model.clone();
    for l in 0..model.n_layers() {
        for site in WeightSite::ALL {
            let p = q.quantize_packed(model.weight(l, site).as_dense().expect("dense source"));
            *packed.weight_mut(l, site) = p.into();
        }
    }
    let tokens = corpus.generate(20, 9).tokens().to_vec();
    let serial_logits = packed.forward(&tokens);
    let mut serial_cache = KvCache::new(packed.n_layers(), packed.config().d_model);
    let serial_steps: Vec<Vec<f32>> =
        tokens.iter().map(|&t| packed.forward_step(t, &mut serial_cache)).collect();

    for threads in THREAD_COUNTS {
        let mut pooled = packed.clone();
        pooled.set_thread_pool(Some(Arc::new(ThreadPool::new(threads))));
        assert_eq!(pooled, packed, "the pool must not participate in model identity");
        assert_eq!(pooled.forward(&tokens), serial_logits, "forward @ {threads} threads");
        let mut cache = KvCache::new(pooled.n_layers(), pooled.config().d_model);
        for (t, (&tok, serial)) in tokens.iter().zip(&serial_steps).enumerate() {
            let logits = pooled.forward_step(tok, &mut cache);
            assert_eq!(&logits, serial, "forward_step {t} @ {threads} threads");
        }
        assert_eq!(cache, serial_cache, "K/V histories must match bit for bit");

        // Batched step over three ragged sequences: same guarantee.
        let mut batch = BatchKvCache::new(pooled.n_layers(), pooled.config().d_model, 3);
        let mut serial_batch = BatchKvCache::new(packed.n_layers(), packed.config().d_model, 3);
        for step in 0..6 {
            let toks = [tokens[step], tokens[step + 2], tokens[step + 4]];
            let slots = [0usize, 1, 2];
            let pooled_logits = pooled.forward_step_batch(&toks, &slots, &mut batch);
            let serial_logits = packed.forward_step_batch(&toks, &slots, &mut serial_batch);
            assert_eq!(pooled_logits, serial_logits, "batch step {step} @ {threads} threads");
        }
    }
}

/// Attention level: the per-slot attention loop of `forward_step_batch`
/// fans over the pool (slots are sequence-independent, writes disjoint);
/// a wide ragged batch must still produce bit-identical logits and K/V
/// histories at every thread count, including counts that do not divide
/// the slot count.
#[test]
fn parallel_attention_is_bit_identical_at_every_thread_count() {
    let (model, corpus) = fitted_tiny();
    let q = FineQuantizer::paper();
    let mut packed = model.clone();
    for l in 0..model.n_layers() {
        for site in WeightSite::ALL {
            let p = q.quantize_packed(model.weight(l, site).as_dense().expect("dense source"));
            *packed.weight_mut(l, site) = p.into();
        }
    }
    let n_slots = 9;
    let tokens = corpus.generate(40, 13).tokens().to_vec();
    // Ragged schedule: slot s joins at step s % 3 and steps every round it
    // is present, so histories have different lengths throughout.
    let schedule: Vec<(Vec<usize>, Vec<usize>)> = (0..8)
        .map(|step| {
            let slots: Vec<usize> = (0..n_slots).filter(|s| step >= s % 3).collect();
            let toks: Vec<usize> =
                slots.iter().map(|&s| tokens[(step * n_slots + s) % tokens.len()]).collect();
            (toks, slots)
        })
        .collect();
    let mut serial_cache = BatchKvCache::new(packed.n_layers(), packed.config().d_model, n_slots);
    let serial: Vec<_> =
        schedule.iter().map(|(t, s)| packed.forward_step_batch(t, s, &mut serial_cache)).collect();
    for threads in THREAD_COUNTS {
        let mut pooled = packed.clone();
        pooled.set_thread_pool(Some(Arc::new(ThreadPool::new(threads))));
        let mut cache = BatchKvCache::new(packed.n_layers(), packed.config().d_model, n_slots);
        for (i, (t, s)) in schedule.iter().enumerate() {
            let logits = pooled.forward_step_batch(t, s, &mut cache);
            assert_eq!(logits, serial[i], "step {i} @ {threads} threads");
        }
        assert_eq!(cache, serial_cache, "K/V histories @ {threads} threads");
    }
}

/// Serving level: complete `BatchScheduler` runs — admission, retirement,
/// backfill, sampling — produce identical finished sequences at every
/// thread count, and identical to solo `generate`.
#[test]
fn batch_scheduler_runs_are_bit_identical_at_every_thread_count() {
    let (model, corpus) = fitted_tiny();
    let cfg = PipelineConfig::default();
    let submit_all = |sched: &mut fineq::lm::BatchScheduler| {
        for id in 0..6u64 {
            let prompt = corpus.generate(3 + id as usize % 4, 70 + id).tokens().to_vec();
            sched
                .submit(ServeRequest {
                    temperature: 0.85,
                    seed: 900 + id,
                    eos: Some(0),
                    ..ServeRequest::new(id, prompt, 4 + id as usize % 3)
                })
                .expect("no KV budget configured");
        }
    };
    let reference = {
        let (mut sched, _) = serve_packed_with_threads(&model, &FineQuantizer::paper(), &cfg, 2, 1);
        assert!(sched.thread_pool().is_none(), "threads == 1 installs no pool");
        submit_all(&mut sched);
        sched.run()
    };
    for threads in [2usize, 4, 7] {
        let (mut sched, _) =
            serve_packed_with_threads(&model, &FineQuantizer::paper(), &cfg, 2, threads);
        assert_eq!(
            sched.thread_pool().expect("pool installed").threads(),
            threads,
            "scheduler must expose the serving pool"
        );
        submit_all(&mut sched);
        let done = sched.run();
        assert_eq!(done, reference, "served output must not depend on thread count ({threads})");
    }
}

/// The `FINEQ_THREADS` environment knob: a positive integer wins, garbage
/// and zero fall back, and the default is always at least one thread.
/// (This binary's other tests pick thread counts explicitly, so mutating
/// the variable here cannot race them.)
#[test]
fn thread_count_env_override_parses_defensively() {
    use fineq::core::pool::{default_threads, THREADS_ENV};
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(default_threads(), 3);
    std::env::set_var(THREADS_ENV, "0");
    assert!(default_threads() >= 1, "zero must fall back, not disable serving");
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(default_threads() >= 1);
    std::env::remove_var(THREADS_ENV);
    assert!(default_threads() >= 1);
}
